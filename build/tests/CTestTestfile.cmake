# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trace_test "/root/repo/build/tests/trace_test")
set_tests_properties(trace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(shadow_test "/root/repo/build/tests/shadow_test")
set_tests_properties(shadow_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vm_frontend_test "/root/repo/build/tests/vm_frontend_test")
set_tests_properties(vm_frontend_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vm_machine_test "/root/repo/build/tests/vm_machine_test")
set_tests_properties(vm_machine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vm_fuzz_test "/root/repo/build/tests/vm_fuzz_test")
set_tests_properties(vm_fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vm_optimizer_test "/root/repo/build/tests/vm_optimizer_test")
set_tests_properties(vm_optimizer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_trms_test "/root/repo/build/tests/core_trms_test")
set_tests_properties(core_trms_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_property_test "/root/repo/build/tests/core_property_test")
set_tests_properties(core_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_metrics_test "/root/repo/build/tests/core_metrics_test")
set_tests_properties(core_metrics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tools_test "/root/repo/build/tests/tools_test")
set_tests_properties(tools_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(driver_test "/root/repo/build/tests/driver_test")
set_tests_properties(driver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;26;isp_add_test;/root/repo/tests/CMakeLists.txt;0;")
