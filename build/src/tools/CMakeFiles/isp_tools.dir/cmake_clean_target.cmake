file(REMOVE_RECURSE
  "libisp_tools.a"
)
