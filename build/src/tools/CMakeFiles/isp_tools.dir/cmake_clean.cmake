file(REMOVE_RECURSE
  "CMakeFiles/isp_tools.dir/CallgrindTool.cpp.o"
  "CMakeFiles/isp_tools.dir/CallgrindTool.cpp.o.d"
  "CMakeFiles/isp_tools.dir/CctTool.cpp.o"
  "CMakeFiles/isp_tools.dir/CctTool.cpp.o.d"
  "CMakeFiles/isp_tools.dir/DrdTool.cpp.o"
  "CMakeFiles/isp_tools.dir/DrdTool.cpp.o.d"
  "CMakeFiles/isp_tools.dir/HelgrindTool.cpp.o"
  "CMakeFiles/isp_tools.dir/HelgrindTool.cpp.o.d"
  "CMakeFiles/isp_tools.dir/MemcheckTool.cpp.o"
  "CMakeFiles/isp_tools.dir/MemcheckTool.cpp.o.d"
  "CMakeFiles/isp_tools.dir/ToolRegistry.cpp.o"
  "CMakeFiles/isp_tools.dir/ToolRegistry.cpp.o.d"
  "libisp_tools.a"
  "libisp_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
