# Empty dependencies file for isp_tools.
# This may be replaced when dependencies are built.
