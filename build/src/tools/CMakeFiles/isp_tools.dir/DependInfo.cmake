
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/CallgrindTool.cpp" "src/tools/CMakeFiles/isp_tools.dir/CallgrindTool.cpp.o" "gcc" "src/tools/CMakeFiles/isp_tools.dir/CallgrindTool.cpp.o.d"
  "/root/repo/src/tools/CctTool.cpp" "src/tools/CMakeFiles/isp_tools.dir/CctTool.cpp.o" "gcc" "src/tools/CMakeFiles/isp_tools.dir/CctTool.cpp.o.d"
  "/root/repo/src/tools/DrdTool.cpp" "src/tools/CMakeFiles/isp_tools.dir/DrdTool.cpp.o" "gcc" "src/tools/CMakeFiles/isp_tools.dir/DrdTool.cpp.o.d"
  "/root/repo/src/tools/HelgrindTool.cpp" "src/tools/CMakeFiles/isp_tools.dir/HelgrindTool.cpp.o" "gcc" "src/tools/CMakeFiles/isp_tools.dir/HelgrindTool.cpp.o.d"
  "/root/repo/src/tools/MemcheckTool.cpp" "src/tools/CMakeFiles/isp_tools.dir/MemcheckTool.cpp.o" "gcc" "src/tools/CMakeFiles/isp_tools.dir/MemcheckTool.cpp.o.d"
  "/root/repo/src/tools/ToolRegistry.cpp" "src/tools/CMakeFiles/isp_tools.dir/ToolRegistry.cpp.o" "gcc" "src/tools/CMakeFiles/isp_tools.dir/ToolRegistry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/isp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/isp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/isp_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/isp_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/isp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
