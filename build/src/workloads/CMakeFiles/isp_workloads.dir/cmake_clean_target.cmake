file(REMOVE_RECURSE
  "libisp_workloads.a"
)
