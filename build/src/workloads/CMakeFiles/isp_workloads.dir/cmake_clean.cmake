file(REMOVE_RECURSE
  "CMakeFiles/isp_workloads.dir/Runner.cpp.o"
  "CMakeFiles/isp_workloads.dir/Runner.cpp.o.d"
  "CMakeFiles/isp_workloads.dir/Workload.cpp.o"
  "CMakeFiles/isp_workloads.dir/Workload.cpp.o.d"
  "CMakeFiles/isp_workloads.dir/WorkloadExtra.cpp.o"
  "CMakeFiles/isp_workloads.dir/WorkloadExtra.cpp.o.d"
  "CMakeFiles/isp_workloads.dir/WorkloadMicro.cpp.o"
  "CMakeFiles/isp_workloads.dir/WorkloadMicro.cpp.o.d"
  "CMakeFiles/isp_workloads.dir/WorkloadOmp.cpp.o"
  "CMakeFiles/isp_workloads.dir/WorkloadOmp.cpp.o.d"
  "CMakeFiles/isp_workloads.dir/WorkloadParsec.cpp.o"
  "CMakeFiles/isp_workloads.dir/WorkloadParsec.cpp.o.d"
  "CMakeFiles/isp_workloads.dir/WorkloadServer.cpp.o"
  "CMakeFiles/isp_workloads.dir/WorkloadServer.cpp.o.d"
  "libisp_workloads.a"
  "libisp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
