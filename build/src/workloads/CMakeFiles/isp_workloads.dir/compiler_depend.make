# Empty compiler generated dependencies file for isp_workloads.
# This may be replaced when dependencies are built.
