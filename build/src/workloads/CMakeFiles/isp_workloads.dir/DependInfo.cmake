
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Runner.cpp" "src/workloads/CMakeFiles/isp_workloads.dir/Runner.cpp.o" "gcc" "src/workloads/CMakeFiles/isp_workloads.dir/Runner.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/workloads/CMakeFiles/isp_workloads.dir/Workload.cpp.o" "gcc" "src/workloads/CMakeFiles/isp_workloads.dir/Workload.cpp.o.d"
  "/root/repo/src/workloads/WorkloadExtra.cpp" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadExtra.cpp.o" "gcc" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadExtra.cpp.o.d"
  "/root/repo/src/workloads/WorkloadMicro.cpp" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadMicro.cpp.o" "gcc" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadMicro.cpp.o.d"
  "/root/repo/src/workloads/WorkloadOmp.cpp" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadOmp.cpp.o" "gcc" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadOmp.cpp.o.d"
  "/root/repo/src/workloads/WorkloadParsec.cpp" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadParsec.cpp.o" "gcc" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadParsec.cpp.o.d"
  "/root/repo/src/workloads/WorkloadServer.cpp" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadServer.cpp.o" "gcc" "src/workloads/CMakeFiles/isp_workloads.dir/WorkloadServer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/isp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/isp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/isp_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/isp_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/isp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
