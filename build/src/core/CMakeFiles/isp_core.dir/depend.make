# Empty dependencies file for isp_core.
# This may be replaced when dependencies are built.
