file(REMOVE_RECURSE
  "libisp_core.a"
)
