
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/HtmlReport.cpp" "src/core/CMakeFiles/isp_core.dir/HtmlReport.cpp.o" "gcc" "src/core/CMakeFiles/isp_core.dir/HtmlReport.cpp.o.d"
  "/root/repo/src/core/Metrics.cpp" "src/core/CMakeFiles/isp_core.dir/Metrics.cpp.o" "gcc" "src/core/CMakeFiles/isp_core.dir/Metrics.cpp.o.d"
  "/root/repo/src/core/NaiveProfiler.cpp" "src/core/CMakeFiles/isp_core.dir/NaiveProfiler.cpp.o" "gcc" "src/core/CMakeFiles/isp_core.dir/NaiveProfiler.cpp.o.d"
  "/root/repo/src/core/ProfileData.cpp" "src/core/CMakeFiles/isp_core.dir/ProfileData.cpp.o" "gcc" "src/core/CMakeFiles/isp_core.dir/ProfileData.cpp.o.d"
  "/root/repo/src/core/ProfileDiff.cpp" "src/core/CMakeFiles/isp_core.dir/ProfileDiff.cpp.o" "gcc" "src/core/CMakeFiles/isp_core.dir/ProfileDiff.cpp.o.d"
  "/root/repo/src/core/Report.cpp" "src/core/CMakeFiles/isp_core.dir/Report.cpp.o" "gcc" "src/core/CMakeFiles/isp_core.dir/Report.cpp.o.d"
  "/root/repo/src/core/RmsProfiler.cpp" "src/core/CMakeFiles/isp_core.dir/RmsProfiler.cpp.o" "gcc" "src/core/CMakeFiles/isp_core.dir/RmsProfiler.cpp.o.d"
  "/root/repo/src/core/TrmsProfiler.cpp" "src/core/CMakeFiles/isp_core.dir/TrmsProfiler.cpp.o" "gcc" "src/core/CMakeFiles/isp_core.dir/TrmsProfiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instr/CMakeFiles/isp_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/isp_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/isp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
