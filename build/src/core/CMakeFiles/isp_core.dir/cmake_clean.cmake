file(REMOVE_RECURSE
  "CMakeFiles/isp_core.dir/HtmlReport.cpp.o"
  "CMakeFiles/isp_core.dir/HtmlReport.cpp.o.d"
  "CMakeFiles/isp_core.dir/Metrics.cpp.o"
  "CMakeFiles/isp_core.dir/Metrics.cpp.o.d"
  "CMakeFiles/isp_core.dir/NaiveProfiler.cpp.o"
  "CMakeFiles/isp_core.dir/NaiveProfiler.cpp.o.d"
  "CMakeFiles/isp_core.dir/ProfileData.cpp.o"
  "CMakeFiles/isp_core.dir/ProfileData.cpp.o.d"
  "CMakeFiles/isp_core.dir/ProfileDiff.cpp.o"
  "CMakeFiles/isp_core.dir/ProfileDiff.cpp.o.d"
  "CMakeFiles/isp_core.dir/Report.cpp.o"
  "CMakeFiles/isp_core.dir/Report.cpp.o.d"
  "CMakeFiles/isp_core.dir/RmsProfiler.cpp.o"
  "CMakeFiles/isp_core.dir/RmsProfiler.cpp.o.d"
  "CMakeFiles/isp_core.dir/TrmsProfiler.cpp.o"
  "CMakeFiles/isp_core.dir/TrmsProfiler.cpp.o.d"
  "libisp_core.a"
  "libisp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
