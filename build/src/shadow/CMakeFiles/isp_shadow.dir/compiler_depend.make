# Empty compiler generated dependencies file for isp_shadow.
# This may be replaced when dependencies are built.
