file(REMOVE_RECURSE
  "CMakeFiles/isp_shadow.dir/ShadowMemory.cpp.o"
  "CMakeFiles/isp_shadow.dir/ShadowMemory.cpp.o.d"
  "libisp_shadow.a"
  "libisp_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
