file(REMOVE_RECURSE
  "libisp_shadow.a"
)
