file(REMOVE_RECURSE
  "libisp_support.a"
)
