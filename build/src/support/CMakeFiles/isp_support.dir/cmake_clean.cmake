file(REMOVE_RECURSE
  "CMakeFiles/isp_support.dir/CommandLine.cpp.o"
  "CMakeFiles/isp_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/isp_support.dir/Csv.cpp.o"
  "CMakeFiles/isp_support.dir/Csv.cpp.o.d"
  "CMakeFiles/isp_support.dir/CurveFit.cpp.o"
  "CMakeFiles/isp_support.dir/CurveFit.cpp.o.d"
  "CMakeFiles/isp_support.dir/Format.cpp.o"
  "CMakeFiles/isp_support.dir/Format.cpp.o.d"
  "CMakeFiles/isp_support.dir/Gnuplot.cpp.o"
  "CMakeFiles/isp_support.dir/Gnuplot.cpp.o.d"
  "CMakeFiles/isp_support.dir/Stats.cpp.o"
  "CMakeFiles/isp_support.dir/Stats.cpp.o.d"
  "CMakeFiles/isp_support.dir/Table.cpp.o"
  "CMakeFiles/isp_support.dir/Table.cpp.o.d"
  "libisp_support.a"
  "libisp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
