# Empty dependencies file for isp_support.
# This may be replaced when dependencies are built.
