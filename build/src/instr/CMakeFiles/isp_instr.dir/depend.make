# Empty dependencies file for isp_instr.
# This may be replaced when dependencies are built.
