file(REMOVE_RECURSE
  "libisp_instr.a"
)
