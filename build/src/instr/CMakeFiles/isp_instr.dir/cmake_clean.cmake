file(REMOVE_RECURSE
  "CMakeFiles/isp_instr.dir/ContextAdapter.cpp.o"
  "CMakeFiles/isp_instr.dir/ContextAdapter.cpp.o.d"
  "CMakeFiles/isp_instr.dir/Dispatcher.cpp.o"
  "CMakeFiles/isp_instr.dir/Dispatcher.cpp.o.d"
  "CMakeFiles/isp_instr.dir/SymbolTable.cpp.o"
  "CMakeFiles/isp_instr.dir/SymbolTable.cpp.o.d"
  "CMakeFiles/isp_instr.dir/Tool.cpp.o"
  "CMakeFiles/isp_instr.dir/Tool.cpp.o.d"
  "libisp_instr.a"
  "libisp_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
