
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instr/ContextAdapter.cpp" "src/instr/CMakeFiles/isp_instr.dir/ContextAdapter.cpp.o" "gcc" "src/instr/CMakeFiles/isp_instr.dir/ContextAdapter.cpp.o.d"
  "/root/repo/src/instr/Dispatcher.cpp" "src/instr/CMakeFiles/isp_instr.dir/Dispatcher.cpp.o" "gcc" "src/instr/CMakeFiles/isp_instr.dir/Dispatcher.cpp.o.d"
  "/root/repo/src/instr/SymbolTable.cpp" "src/instr/CMakeFiles/isp_instr.dir/SymbolTable.cpp.o" "gcc" "src/instr/CMakeFiles/isp_instr.dir/SymbolTable.cpp.o.d"
  "/root/repo/src/instr/Tool.cpp" "src/instr/CMakeFiles/isp_instr.dir/Tool.cpp.o" "gcc" "src/instr/CMakeFiles/isp_instr.dir/Tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/isp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
