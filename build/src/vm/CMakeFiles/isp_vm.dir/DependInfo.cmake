
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Ast.cpp" "src/vm/CMakeFiles/isp_vm.dir/Ast.cpp.o" "gcc" "src/vm/CMakeFiles/isp_vm.dir/Ast.cpp.o.d"
  "/root/repo/src/vm/Compiler.cpp" "src/vm/CMakeFiles/isp_vm.dir/Compiler.cpp.o" "gcc" "src/vm/CMakeFiles/isp_vm.dir/Compiler.cpp.o.d"
  "/root/repo/src/vm/Device.cpp" "src/vm/CMakeFiles/isp_vm.dir/Device.cpp.o" "gcc" "src/vm/CMakeFiles/isp_vm.dir/Device.cpp.o.d"
  "/root/repo/src/vm/Disasm.cpp" "src/vm/CMakeFiles/isp_vm.dir/Disasm.cpp.o" "gcc" "src/vm/CMakeFiles/isp_vm.dir/Disasm.cpp.o.d"
  "/root/repo/src/vm/Lexer.cpp" "src/vm/CMakeFiles/isp_vm.dir/Lexer.cpp.o" "gcc" "src/vm/CMakeFiles/isp_vm.dir/Lexer.cpp.o.d"
  "/root/repo/src/vm/Machine.cpp" "src/vm/CMakeFiles/isp_vm.dir/Machine.cpp.o" "gcc" "src/vm/CMakeFiles/isp_vm.dir/Machine.cpp.o.d"
  "/root/repo/src/vm/Optimizer.cpp" "src/vm/CMakeFiles/isp_vm.dir/Optimizer.cpp.o" "gcc" "src/vm/CMakeFiles/isp_vm.dir/Optimizer.cpp.o.d"
  "/root/repo/src/vm/Parser.cpp" "src/vm/CMakeFiles/isp_vm.dir/Parser.cpp.o" "gcc" "src/vm/CMakeFiles/isp_vm.dir/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instr/CMakeFiles/isp_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/isp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
