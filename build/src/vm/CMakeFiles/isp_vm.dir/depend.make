# Empty dependencies file for isp_vm.
# This may be replaced when dependencies are built.
