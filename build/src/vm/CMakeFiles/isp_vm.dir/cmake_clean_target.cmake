file(REMOVE_RECURSE
  "libisp_vm.a"
)
