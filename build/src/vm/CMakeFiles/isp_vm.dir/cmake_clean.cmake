file(REMOVE_RECURSE
  "CMakeFiles/isp_vm.dir/Ast.cpp.o"
  "CMakeFiles/isp_vm.dir/Ast.cpp.o.d"
  "CMakeFiles/isp_vm.dir/Compiler.cpp.o"
  "CMakeFiles/isp_vm.dir/Compiler.cpp.o.d"
  "CMakeFiles/isp_vm.dir/Device.cpp.o"
  "CMakeFiles/isp_vm.dir/Device.cpp.o.d"
  "CMakeFiles/isp_vm.dir/Disasm.cpp.o"
  "CMakeFiles/isp_vm.dir/Disasm.cpp.o.d"
  "CMakeFiles/isp_vm.dir/Lexer.cpp.o"
  "CMakeFiles/isp_vm.dir/Lexer.cpp.o.d"
  "CMakeFiles/isp_vm.dir/Machine.cpp.o"
  "CMakeFiles/isp_vm.dir/Machine.cpp.o.d"
  "CMakeFiles/isp_vm.dir/Optimizer.cpp.o"
  "CMakeFiles/isp_vm.dir/Optimizer.cpp.o.d"
  "CMakeFiles/isp_vm.dir/Parser.cpp.o"
  "CMakeFiles/isp_vm.dir/Parser.cpp.o.d"
  "libisp_vm.a"
  "libisp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
