
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/Event.cpp" "src/trace/CMakeFiles/isp_trace.dir/Event.cpp.o" "gcc" "src/trace/CMakeFiles/isp_trace.dir/Event.cpp.o.d"
  "/root/repo/src/trace/Synthetic.cpp" "src/trace/CMakeFiles/isp_trace.dir/Synthetic.cpp.o" "gcc" "src/trace/CMakeFiles/isp_trace.dir/Synthetic.cpp.o.d"
  "/root/repo/src/trace/TraceFile.cpp" "src/trace/CMakeFiles/isp_trace.dir/TraceFile.cpp.o" "gcc" "src/trace/CMakeFiles/isp_trace.dir/TraceFile.cpp.o.d"
  "/root/repo/src/trace/TraceMerger.cpp" "src/trace/CMakeFiles/isp_trace.dir/TraceMerger.cpp.o" "gcc" "src/trace/CMakeFiles/isp_trace.dir/TraceMerger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/isp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
