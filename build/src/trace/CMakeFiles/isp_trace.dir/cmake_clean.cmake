file(REMOVE_RECURSE
  "CMakeFiles/isp_trace.dir/Event.cpp.o"
  "CMakeFiles/isp_trace.dir/Event.cpp.o.d"
  "CMakeFiles/isp_trace.dir/Synthetic.cpp.o"
  "CMakeFiles/isp_trace.dir/Synthetic.cpp.o.d"
  "CMakeFiles/isp_trace.dir/TraceFile.cpp.o"
  "CMakeFiles/isp_trace.dir/TraceFile.cpp.o.d"
  "CMakeFiles/isp_trace.dir/TraceMerger.cpp.o"
  "CMakeFiles/isp_trace.dir/TraceMerger.cpp.o.d"
  "libisp_trace.a"
  "libisp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
