# Empty dependencies file for isp_trace.
# This may be replaced when dependencies are built.
