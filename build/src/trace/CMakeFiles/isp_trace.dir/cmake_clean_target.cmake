file(REMOVE_RECURSE
  "libisp_trace.a"
)
