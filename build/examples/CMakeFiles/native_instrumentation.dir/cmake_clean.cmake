file(REMOVE_RECURSE
  "CMakeFiles/native_instrumentation.dir/native_instrumentation.cpp.o"
  "CMakeFiles/native_instrumentation.dir/native_instrumentation.cpp.o.d"
  "native_instrumentation"
  "native_instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
