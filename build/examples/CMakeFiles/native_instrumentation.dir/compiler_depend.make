# Empty compiler generated dependencies file for native_instrumentation.
# This may be replaced when dependencies are built.
