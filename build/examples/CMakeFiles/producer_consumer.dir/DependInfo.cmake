
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/producer_consumer.cpp" "examples/CMakeFiles/producer_consumer.dir/producer_consumer.cpp.o" "gcc" "examples/CMakeFiles/producer_consumer.dir/producer_consumer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/isp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/isp_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/isp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/isp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/isp_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/isp_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/isp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
