file(REMOVE_RECURSE
  "CMakeFiles/imagepipeline.dir/imagepipeline.cpp.o"
  "CMakeFiles/imagepipeline.dir/imagepipeline.cpp.o.d"
  "imagepipeline"
  "imagepipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imagepipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
