# Empty compiler generated dependencies file for imagepipeline.
# This may be replaced when dependencies are built.
