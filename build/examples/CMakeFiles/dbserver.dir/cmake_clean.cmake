file(REMOVE_RECURSE
  "CMakeFiles/dbserver.dir/dbserver.cpp.o"
  "CMakeFiles/dbserver.dir/dbserver.cpp.o.d"
  "dbserver"
  "dbserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
