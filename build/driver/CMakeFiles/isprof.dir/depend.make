# Empty dependencies file for isprof.
# This may be replaced when dependencies are built.
