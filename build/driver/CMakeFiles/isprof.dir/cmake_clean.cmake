file(REMOVE_RECURSE
  "CMakeFiles/isprof.dir/isprof_main.cpp.o"
  "CMakeFiles/isprof.dir/isprof_main.cpp.o.d"
  "isprof"
  "isprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
