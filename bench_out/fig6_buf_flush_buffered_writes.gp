set terminal pngcairo size 800,500
set output 'bench_out/fig6_buf_flush_buffered_writes.png'
set title 'buf_flush_buffered_writes worst-case running time'
set xlabel 'input size'
set ylabel 'cost (basic blocks)'
set key left top
plot 'bench_out/fig6_buf_flush_buffered_writes.dat' index 0 with points pt 7 title 'by rms', \
     'bench_out/fig6_buf_flush_buffered_writes.dat' index 1 with points pt 7 title 'by trms'
