set terminal pngcairo size 800,500
set output 'bench_out/fig5_im_generate.png'
set title 'im_generate worst-case running time'
set xlabel 'input size'
set ylabel 'cost (basic blocks)'
set key left top
plot 'bench_out/fig5_im_generate.dat' index 0 with points pt 7 title 'by rms', \
     'bench_out/fig5_im_generate.dat' index 1 with points pt 7 title 'by trms'
