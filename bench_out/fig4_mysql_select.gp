set terminal pngcairo size 800,500
set output 'bench_out/fig4_mysql_select.png'
set title 'mysql_select worst-case running time'
set xlabel 'input size'
set ylabel 'cost (basic blocks)'
set key left top
plot 'bench_out/fig4_mysql_select.dat' index 0 with points pt 7 title 'by rms', \
     'bench_out/fig4_mysql_select.dat' index 1 with points pt 7 title 'by trms'
