//===- driver/isprof_main.cpp - The isprof command-line driver -------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The user-facing driver, mirroring how the paper's tool is invoked as
// `valgrind --tool=aprof <program>`:
//
//   isprof run <prog.mini> [--tools=aprof-trms,...] [--record=trace.bin]
//   isprof replay <trace.bin> [--tools=...]
//   isprof check <prog.mini>
//   isprof disasm <prog.mini>
//   isprof workload <name> [--tools=...] [--threads=N] [--size=N]
//   isprof list
//
// `run` executes a guest-language program under any combination of the
// registered analysis tools (aprof-trms, aprof-rms, helgrind, drd,
// memcheck, callgrind, cct, nulgrind) in one pass, printing each tool's
// report; --record also captures the event trace for offline replay.
//
//===----------------------------------------------------------------------===//

#include "analysis/Escape.h"
#include "analysis/LocksetLint.h"
#include "analysis/Range.h"
#include "analysis/Verifier.h"
#include "collect/Collector.h"
#include "core/HtmlReport.h"
#include "core/ProfileDiff.h"
#include "core/TrmsProfiler.h"
#include "instr/ContextAdapter.h"
#include "instr/Dispatcher.h"
#include "obs/Obs.h"
#include "obs/TraceLog.h"
#include "replay/ParallelReplay.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "shadow/ShardedShadow.h"
#include "tools/ToolRegistry.h"
#include "trace/TraceFile.h"
#include "trace/TraceStream.h"
#include "vm/Compiler.h"
#include "vm/Diag.h"
#include "vm/Disasm.h"
#include "vm/Machine.h"
#include "vm/Optimizer.h"
#include "workloads/Runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include <sys/resource.h>

using namespace isp;

namespace {

int usage() {
  std::fputs(
      "usage: isprof <command> [options]\n"
      "\n"
      "commands:\n"
      "  run <prog.mini>       compile and execute under analysis tools\n"
      "  diff <base.bin> <new.bin>  compare two recorded traces'\n"
      "                        input-sensitive profiles (regressions)\n"
      "  replay <trace.bin>    run analysis tools over a recorded trace\n"
      "  collect <stream...>   ingest many recorded streams concurrently\n"
      "                        into a fleet-level rollup; --diff A B\n"
      "                        compares two stream sets' rms curves\n"
      "  check <prog.mini>     compile only; print diagnostics\n"
      "  disasm <prog.mini>    print the compiled bytecode\n"
      "  workload <name>       run a registered benchmark workload\n"
      "  list                  list tools and workloads\n"
      "\n"
      "common options:\n"
      "  --tools=a,b,c   comma-separated tool list (default aprof-trms)\n"
      "  --parallel-tools[=N]  deliver event batches to tools from N\n"
      "                  worker threads (default: auto); tools pinned to\n"
      "                  the dispatch thread fall back to serial delivery\n"
      "  --record=PATH   (run) also record the event trace to PATH\n"
      "  --record-stream=PATH   (run, workload) stream the event trace\n"
      "                  to a chunked file as it happens: bounded memory\n"
      "                  regardless of trace length\n"
      "  --replay-stream=PATH   (replay) replay a chunked stream file\n"
      "                  chunk by chunk (bounded memory); plain replay\n"
      "                  also auto-detects stream files by magic\n"
      "  --replay-workers=N     (replay, streams, --tools=aprof-trms\n"
      "                  only) partition shadow updates across N worker\n"
      "                  threads with epoch-barrier coordination; the\n"
      "                  report is byte-identical to serial replay.\n"
      "                  0 = serial; env ISPROF_REPLAY_WORKERS engages\n"
      "                  the same mode when the flag is absent\n"
      "  --shadow-shards=N      shard the aprof-trms global wts shadow\n"
      "                  by address range (power of two; default 1).\n"
      "                  Profiles are identical across shard counts\n"
      "  --batch-capacity=N     dispatcher pending-batch size (power of\n"
      "                  two in [16, 65536]; default 256)\n"
      "  --verify-bytecode  statically verify the compiled bytecode;\n"
      "                  refuse to run on failure\n"
      "  --lint          static lockset lint: report globals shared\n"
      "                  across threads with no consistent lock\n"
      "  --lint-bounds   static bounds lint: report provably\n"
      "                  out-of-range indices and possible index\n"
      "                  overflow from the value-range analysis\n"
      "  --growth-check  (run, workload) add static-vs-dynamic growth\n"
      "                  agreement columns to profile summaries and\n"
      "                  warn on contradictions\n"
      "  --annotate-ranges      (disasm) append ; range=[lo,hi] and\n"
      "                  ; noescape comments from the static analysis\n"
      "  --slice=N       scheduler quantum in instructions (default 150)\n"
      "  --seed=N        guest rand()/device seed (default 42)\n"
      "  --dispatch=MODE interpreter dispatch: auto (default), switch,\n"
      "                  or threaded (computed gotos; GCC/Clang builds).\n"
      "                  Profiles are identical across modes\n"
      "  --block-compile (run, workload) execute straight-line blocks\n"
      "                  from pre-compacted event templates; profiles\n"
      "                  are identical with or without\n"
      "  --threads=N --size=N   (workload) parameters\n"
      "  --stats=json|csv|off   dump pipeline self-metrics (default off)\n"
      "  --stats-out=PATH       write --stats output to PATH, not stdout\n"
      "  --stats-interval=MS    (with --stats=json --stats-out=PATH)\n"
      "                  append a live JSONL stats snapshot to PATH.live\n"
      "                  every MS milliseconds while the command runs\n"
      "  --trace-out=PATH       write a chrome://tracing timeline to PATH\n"
      "  --stream-chunk-bytes=N (--record-stream) target chunk payload\n"
      "                  size (power of two in [1024, 1048576])\n"
      "\n"
      "collect options:\n"
      "  --spool=DIR     also ingest every stream file found in DIR\n"
      "  --watch=MS      with --spool: poll DIR every MS milliseconds for\n"
      "                  new streams until DIR/collector.stop appears\n"
      "  --ingest-workers=N     concurrent ingestion threads (0 = auto)\n"
      "  --routine=a,b   restrict the rollup to these routines; chunks\n"
      "                  their v2 activity bitmaps provably exclude are\n"
      "                  skipped without decoding\n"
      "  --program=NAME  program label for every stream (default: file\n"
      "                  stem)\n"
      "  --top=N         rollup rows to print (default 10)\n"
      "  --curve=NAME    also print NAME's full per-rms cost curve\n"
      "  --growth-source=FILE   compile FILE and add static/agree\n"
      "                  growth columns to the rollup\n"
      "  --diff          compare two stream sets (exit 3 on regression)\n",
      stderr);
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream)
    return false;
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  Out = Buffer.str();
  return true;
}

/// Decodes --parallel-tools[=N]. Returns false (after printing a
/// diagnostic) on a malformed value. On success *WorkersOut is -1 when
/// the flag is absent, otherwise the worker count (0 = auto-size).
bool parseParallelTools(const OptionParser &Options, int *WorkersOut) {
  std::string V = Options.getString("parallel-tools");
  if (V == "false") { // flag not given
    *WorkersOut = -1;
    return true;
  }
  if (V == "true" || V.empty()) { // bare --parallel-tools
    *WorkersOut = 0;
    return true;
  }
  char *End = nullptr;
  long N = std::strtol(V.c_str(), &End, 10);
  if (End == V.c_str() || *End != '\0' || N < 1 ||
      N > static_cast<long>(EventDispatcher::MaxParallelWorkers)) {
    std::fprintf(stderr,
                 "isprof: invalid --parallel-tools value '%s' (expected a "
                 "worker count in [1, %u])\n",
                 V.c_str(), EventDispatcher::MaxParallelWorkers);
    return false;
  }
  *WorkersOut = static_cast<int>(N);
  return true;
}

/// Arms \p Dispatcher with the validated --parallel-tools request.
void applyParallelTools(EventDispatcher &Dispatcher, int Workers) {
  if (Workers >= 0)
    Dispatcher.setParallelWorkers(static_cast<unsigned>(Workers));
}

/// The validated --replay-workers request. Explicit distinguishes the
/// command-line flag (incompatible configurations are hard errors) from
/// the ISPROF_REPLAY_WORKERS environment fallback (which engages only
/// when the replay is eligible, so a suite-wide export — the TSan CI
/// job — cannot break monolithic-trace or multi-tool invocations).
struct ReplayWorkersRequest {
  unsigned Workers = 0;
  bool Explicit = false;
};

/// Decodes --replay-workers / ISPROF_REPLAY_WORKERS. Returns false
/// (after printing a diagnostic) on a malformed explicit value.
bool parseReplayWorkers(const OptionParser &Options,
                        ReplayWorkersRequest *Out) {
  std::string V = Options.getString("replay-workers");
  if (V.empty()) {
    if (const char *Env = std::getenv("ISPROF_REPLAY_WORKERS")) {
      char *End = nullptr;
      long N = std::strtol(Env, &End, 10);
      if (End != Env && *End == '\0' && N >= 0 &&
          N <= static_cast<long>(ParallelReplayOptions::MaxWorkers))
        Out->Workers = static_cast<unsigned>(N);
    }
    return true;
  }
  char *End = nullptr;
  long N = std::strtol(V.c_str(), &End, 10);
  if (End == V.c_str() || *End != '\0' || N < 0 ||
      N > static_cast<long>(ParallelReplayOptions::MaxWorkers)) {
    std::fprintf(stderr,
                 "isprof: invalid --replay-workers value '%s' (expected a "
                 "worker count in [0, %u])\n",
                 V.c_str(), ParallelReplayOptions::MaxWorkers);
    return false;
  }
  Out->Workers = static_cast<unsigned>(N);
  Out->Explicit = true;
  return true;
}

/// Decodes --dispatch and --block-compile into \p Opts. Returns false
/// (after printing a diagnostic) on an unknown mode. A threaded request
/// on a build without computed-goto support degrades to the switch loop
/// with a warning — the two loops are semantically identical.
bool parseMachineTuning(const OptionParser &Options, MachineOptions *Opts) {
  std::string V = Options.getString("dispatch");
  if (V == "auto") {
    Opts->Dispatch = DispatchMode::Auto;
  } else if (V == "switch") {
    Opts->Dispatch = DispatchMode::Switch;
  } else if (V == "threaded") {
    if (!ThreadedDispatchAvailable)
      std::fprintf(stderr,
                   "isprof: warning: threaded dispatch is not available in "
                   "this build; using the switch interpreter\n");
    Opts->Dispatch = DispatchMode::Threaded;
  } else {
    std::fprintf(stderr,
                 "isprof: invalid --dispatch value '%s' (expected auto, "
                 "switch, or threaded)\n",
                 V.c_str());
    return false;
  }
  Opts->BlockCompile = Options.getFlag("block-compile");
  return true;
}

/// Decodes a power-of-two numeric option in [\p Min, \p Max]. Returns
/// false (after printing a diagnostic) on a malformed or out-of-range
/// value; the option's default must itself be valid.
bool parsePow2Option(const OptionParser &Options, const char *Name,
                     uint64_t Min, uint64_t Max, uint64_t *Out) {
  std::string V = Options.getString(Name);
  char *End = nullptr;
  unsigned long long N = std::strtoull(V.c_str(), &End, 10);
  if (End == V.c_str() || *End != '\0' || N < Min || N > Max ||
      (N & (N - 1)) != 0) {
    std::fprintf(stderr,
                 "isprof: invalid --%s value '%s' (expected a power of "
                 "two in [%llu, %llu])\n",
                 Name, V.c_str(), static_cast<unsigned long long>(Min),
                 static_cast<unsigned long long>(Max));
    return false;
  }
  *Out = N;
  return true;
}

/// Decodes --shadow-shards into \p ToolOpts.
bool parseShadowShards(const OptionParser &Options, ToolOptions *ToolOpts) {
  uint64_t N = 1;
  if (!parsePow2Option(Options, "shadow-shards", 1,
                       ShardedShadow<uint64_t>::MaxShards, &N))
    return false;
  ToolOpts->ShadowShards = static_cast<unsigned>(N);
  return true;
}

/// Decodes --batch-capacity and applies it to \p Dispatcher.
bool applyBatchCapacity(const OptionParser &Options,
                        EventDispatcher &Dispatcher) {
  uint64_t N = EventDispatcher::DefaultBatchCapacity;
  if (!parsePow2Option(Options, "batch-capacity",
                       EventDispatcher::MinBatchCapacity,
                       EventDispatcher::MaxBatchCapacity, &N))
    return false;
  Dispatcher.setBatchCapacity(static_cast<size_t>(N));
  return true;
}

/// Decodes --stream-chunk-bytes into \p StreamOpts.
bool parseStreamChunkBytes(const OptionParser &Options,
                           TraceStreamOptions *StreamOpts) {
  uint64_t N = TraceStreamOptions().ChunkBytes;
  if (!parsePow2Option(Options, "stream-chunk-bytes", 1024, uint64_t(1) << 20,
                       &N))
    return false;
  StreamOpts->ChunkBytes = static_cast<size_t>(N);
  return true;
}

/// Exports the stream writer's counters into the obs registry so the
/// bounded-memory CI assertions can read them from --stats output.
void publishStreamStats(const TraceStreamWriter &Writer) {
  if (!obs::statsEnabled())
    return;
  obs::Registry &R = obs::Registry::get();
  R.counter("trace_stream.events_written").add(Writer.eventsWritten());
  R.counter("trace_stream.chunks_written").add(Writer.chunksWritten());
  R.counter("trace_stream.bytes_written").add(Writer.bytesWritten());
  R.gauge("trace_stream.peak_buffered_bytes")
      .noteMax(Writer.peakBufferedBytes());
}

std::vector<std::string> splitList(const std::string &Csv) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= Csv.size()) {
    size_t Comma = Csv.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Csv.size();
    if (Comma > Pos)
      Out.push_back(Csv.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

struct ToolSet {
  std::vector<std::unique_ptr<Tool>> Inners;
  std::vector<std::unique_ptr<ContextAdapter>> Adapters;
  /// What actually subscribes to events, in creation order.
  std::vector<Tool *> Fronts;

  /// Creates every requested tool; returns false on an unknown name.
  /// With \p Contexts set, each tool is wrapped in a ContextAdapter so
  /// profiles are keyed by full call paths. \p ToolOpts carries the
  /// construction knobs (--shadow-shards).
  bool create(const std::string &Csv, bool Contexts = false,
              ToolOptions ToolOpts = ToolOptions()) {
    for (const std::string &Name : splitList(Csv)) {
      std::unique_ptr<Tool> T = makeTool(Name, ToolOpts);
      if (!T) {
        std::fprintf(stderr, "isprof: unknown tool '%s'; known tools:",
                     Name.c_str());
        for (const std::string &Known : allToolNames())
          std::fprintf(stderr, " %s", Known.c_str());
        std::fputc('\n', stderr);
        return false;
      }
      Inners.push_back(std::move(T));
      if (Contexts) {
        Adapters.push_back(
            std::make_unique<ContextAdapter>(*Inners.back()));
        Fronts.push_back(Adapters.back().get());
      } else {
        Adapters.push_back(nullptr);
        Fronts.push_back(Inners.back().get());
      }
    }
    return true;
  }

  void attach(EventDispatcher &Dispatcher) {
    for (Tool *T : Fronts)
      Dispatcher.addTool(T);
  }

  void printReports(const SymbolTable *Symbols,
                    const std::map<RoutineId, unsigned> *StaticGrowth =
                        nullptr) {
    for (size_t I = 0; I != Inners.size(); ++I) {
      const SymbolTable *Table =
          Adapters[I] ? &Adapters[I]->contextSymbols() : Symbols;
      std::printf("--- %s ---\n%s\n", Fronts[I]->name().c_str(),
                  renderToolReport(*Inners[I], Table, StaticGrowth).c_str());
    }
  }

  /// Writes an HTML report from the first profiling tool, if any.
  bool writeHtml(const std::string &Path, const SymbolTable *Symbols) {
    for (size_t I = 0; I != Inners.size(); ++I) {
      if (ProfileDatabase *Db = Inners[I]->profileDatabase()) {
        HtmlReportOptions HtmlOpts;
        HtmlOpts.Title = "isprof profile (" + Fronts[I]->name() + ")";
        const SymbolTable *Table =
            Adapters[I] ? &Adapters[I]->contextSymbols() : Symbols;
        if (!writeHtmlReport(Path, *Db, Table, HtmlOpts)) {
          std::fprintf(stderr, "isprof: cannot write %s\n", Path.c_str());
          return false;
        }
        std::printf("[HTML report -> %s]\n\n", Path.c_str());
        return true;
      }
    }
    std::fprintf(stderr, "isprof: --html needs an aprof tool in --tools\n");
    return false;
  }
};

/// Runs the static checks requested on the command line (after compile
/// and optional optimization). Returns 0 to continue, nonzero to stop
/// with that exit code. --verify-bytecode failures go to stderr;
/// --lint always prints its summary (drd-style) to stdout, and a clean
/// program reports zero locations.
int runStaticChecks(const Program &Prog, const OptionParser &Options) {
  if (Options.getFlag("verify-bytecode")) {
    analysis::VerifyResult Result = analysis::verifyProgram(Prog);
    if (!Result.ok()) {
      std::fprintf(stderr, "%s", Result.render(Prog).c_str());
      return 1;
    }
    std::printf("[bytecode verified: %zu function(s)]\n",
                Prog.Functions.size());
  }
  if (Options.getFlag("lint")) {
    analysis::LintReport Report = analysis::runLocksetLint(Prog);
    std::printf("%s", Report.render().c_str());
  }
  if (Options.getFlag("lint-bounds")) {
    analysis::BoundsReport Report = analysis::runBoundsLint(Prog);
    std::printf("%s", Report.render(Prog).c_str());
  }
  return 0;
}

/// The --growth-check static degrees, or nothing when the flag is off.
std::optional<std::map<RoutineId, unsigned>>
staticGrowthForReports(const Program &Prog, const OptionParser &Options) {
  if (!Options.getFlag("growth-check"))
    return std::nullopt;
  return analysis::estimateGrowth(Prog);
}

int commandRun(OptionParser &Options) {
  if (Options.positional().size() < 2) {
    std::fprintf(stderr, "isprof run: missing program file\n");
    return 2;
  }
  std::string Source;
  if (!readFile(Options.positional()[1], Source)) {
    std::fprintf(stderr, "isprof: cannot read %s\n",
                 Options.positional()[1].c_str());
    return 1;
  }
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  if (!Prog) {
    std::fputs(Diags.render().c_str(), stderr);
    return 1;
  }
  if (Options.getFlag("optimize")) {
    OptimizerStats Opt = optimizeProgram(*Prog);
    std::printf("[optimizer: %u constant(s) folded, %u branch(es) "
                "resolved, %u jump(s) threaded, %u instruction(s) "
                "removed]\n",
                Opt.ConstantsFolded, Opt.BranchesResolved,
                Opt.JumpsThreaded, Opt.InstructionsRemoved);
  }
  if (int Code = runStaticChecks(*Prog, Options))
    return Code;

  ToolOptions ToolOpts;
  if (!parseShadowShards(Options, &ToolOpts))
    return 2;
  ToolSet Tools;
  if (!Tools.create(Options.getString("tools"), Options.getFlag("contexts"),
                    ToolOpts))
    return 2;

  MachineOptions MachineOpts;
  MachineOpts.SliceLength = static_cast<uint64_t>(Options.getInt("slice"));
  MachineOpts.Seed = static_cast<uint64_t>(Options.getInt("seed"));
  if (!parseMachineTuning(Options, &MachineOpts))
    return 2;

  int ParallelWorkers = -1;
  if (!parseParallelTools(Options, &ParallelWorkers))
    return 2;
  EventDispatcher Dispatcher;
  Tools.attach(Dispatcher);
  applyParallelTools(Dispatcher, ParallelWorkers);
  if (!applyBatchCapacity(Options, Dispatcher))
    return 2;
  std::string RecordPath = Options.getString("record");
  if (!RecordPath.empty())
    Dispatcher.enableRecording();
  std::string StreamPath = Options.getString("record-stream");
  TraceStreamWriter StreamWriter;
  if (!StreamPath.empty()) {
    TraceStreamOptions StreamOpts;
    if (!parseStreamChunkBytes(Options, &StreamOpts))
      return 2;
    if (!StreamWriter.open(StreamPath, Prog->Symbols.entries(),
                           StreamOpts)) {
      std::fprintf(stderr, "isprof: %s\n", StreamWriter.error().c_str());
      return 1;
    }
    Dispatcher.setRecordSink(&StreamWriter);
  }

  Machine M(*Prog, &Dispatcher, MachineOpts);
  RunResult Result = M.run();
  if (!Result.Output.empty())
    std::printf("%s", Result.Output.c_str());
  if (!Result.Ok) {
    std::fprintf(stderr, "isprof: guest failed: %s\n",
                 Result.Error.c_str());
    return 1;
  }
  std::printf("[exit %lld; %s instructions, %s basic blocks, %u "
              "threads]\n\n",
              static_cast<long long>(Result.ExitCode),
              formatWithCommas(Result.Stats.Instructions).c_str(),
              formatWithCommas(Result.Stats.BasicBlocks).c_str(),
              static_cast<unsigned>(Result.Stats.ThreadsSpawned));

  if (!RecordPath.empty()) {
    TraceData Data;
    Data.Routines = Prog->Symbols.entries();
    Data.Events = Dispatcher.takeRecordedEvents();
    if (!writeTraceFile(RecordPath, Data)) {
      std::fprintf(stderr, "isprof: cannot write trace %s\n",
                   RecordPath.c_str());
      return 1;
    }
    std::printf("[trace: %zu events -> %s]\n\n", Data.Events.size(),
                RecordPath.c_str());
  }
  if (!StreamPath.empty()) {
    if (!StreamWriter.close()) {
      std::fprintf(stderr, "isprof: %s\n", StreamWriter.error().c_str());
      return 1;
    }
    publishStreamStats(StreamWriter);
    std::printf("[stream: %s events in %s chunks -> %s (%s)]\n\n",
                formatWithCommas(StreamWriter.eventsWritten()).c_str(),
                formatWithCommas(StreamWriter.chunksWritten()).c_str(),
                StreamPath.c_str(),
                formatBytes(StreamWriter.bytesWritten()).c_str());
  }

  std::string HtmlPath = Options.getString("html");
  if (!HtmlPath.empty() && !Tools.writeHtml(HtmlPath, &Prog->Symbols))
    return 1;
  std::optional<std::map<RoutineId, unsigned>> Growth =
      staticGrowthForReports(*Prog, Options);
  Tools.printReports(&Prog->Symbols, Growth ? &*Growth : nullptr);
  return 0;
}

/// Parallel stream replay (--replay-workers=N): the shard-partitioned
/// engine with epoch barriers, producing a report byte-identical to the
/// serial path.
int replayStreamParallel(const std::string &StreamPath,
                         const ToolOptions &ToolOpts, unsigned Workers) {
  TraceStreamReader Reader;
  if (!Reader.open(StreamPath)) {
    std::fprintf(stderr, "isprof: cannot read stream %s: %s\n",
                 StreamPath.c_str(), Reader.error().c_str());
    return 1;
  }
  SymbolTable Symbols;
  for (const auto &[Id, Name] : Reader.routines())
    Symbols.intern(Name);

  TrmsProfilerOptions ProfOpts;
  ProfOpts.ShadowShards = ToolOpts.ShadowShards;
  if (ProfOpts.ShadowShards <= 1) {
    // --shadow-shards left at its default: auto-size so each worker
    // owns several shards (profiles are identical across shard counts,
    // so this only affects load balance).
    unsigned Shards = 1;
    while (Shards < 4 * Workers && Shards < 64)
      Shards <<= 1;
    ProfOpts.ShadowShards = Shards;
  }
  ParallelReplayProfiler Profiler(ProfOpts);

  ParallelReplayOptions ReplayOpts;
  ReplayOpts.Workers = Workers;
  uint64_t Replayed = 0;
  bool Ok = parallelReplayStream(Reader, Profiler, &Symbols, ReplayOpts,
                                 /*StatsOut=*/nullptr, &Replayed);
  if (!Ok) {
    std::fprintf(stderr, "isprof: stream %s: chunk %zu: %s\n",
                 StreamPath.c_str(),
                 Reader.cursor() == 0 ? size_t(0) : Reader.cursor() - 1,
                 Reader.error().c_str());
    return 1;
  }
  std::printf("[replayed %s events from %zu chunk(s)]\n\n",
              formatWithCommas(Replayed).c_str(), Reader.chunkCount());
  std::printf("--- %s ---\n%s\n", Profiler.name().c_str(),
              renderToolReport(Profiler, &Symbols).c_str());
  return 0;
}

int commandReplay(OptionParser &Options) {
  // --replay-stream names a chunked stream explicitly; a positional
  // trace that carries the stream magic is streamed too, so `isprof
  // replay file` works for either format.
  std::string StreamPath = Options.getString("replay-stream");
  std::string TracePath;
  if (StreamPath.empty()) {
    if (Options.positional().size() < 2) {
      std::fprintf(stderr, "isprof replay: missing trace file\n");
      return 2;
    }
    TracePath = Options.positional()[1];
    if (isTraceStreamFile(TracePath)) {
      StreamPath = TracePath;
      TracePath.clear();
    }
  }

  ToolOptions ToolOpts;
  if (!parseShadowShards(Options, &ToolOpts))
    return 2;
  ReplayWorkersRequest ReplayReq;
  if (!parseReplayWorkers(Options, &ReplayReq))
    return 2;
  int ParallelWorkers = -1;
  if (!parseParallelTools(Options, &ParallelWorkers))
    return 2;
  // Parallel replay partitions the trms shadow state itself, so it
  // applies only to chunked streams with exactly the aprof-trms tool
  // and no tool-level fan-out. An explicit incompatible request is an
  // error; the environment fallback silently stays serial.
  bool ParallelEligible = !StreamPath.empty() &&
                          Options.getString("tools") == "aprof-trms" &&
                          ParallelWorkers < 0;
  if (ReplayReq.Workers > 0 && ReplayReq.Explicit && !ParallelEligible) {
    std::fprintf(stderr,
                 "isprof: --replay-workers requires a chunked stream "
                 "(--replay-stream or a stream-format trace), "
                 "--tools=aprof-trms, and no --parallel-tools\n");
    return 2;
  }
  if (ReplayReq.Workers > 0 && ParallelEligible)
    return replayStreamParallel(StreamPath, ToolOpts, ReplayReq.Workers);

  ToolSet Tools;
  if (!Tools.create(Options.getString("tools"), /*Contexts=*/false,
                    ToolOpts))
    return 2;
  EventDispatcher Dispatcher;
  Tools.attach(Dispatcher);
  applyParallelTools(Dispatcher, ParallelWorkers);
  if (!applyBatchCapacity(Options, Dispatcher))
    return 2;

  if (!StreamPath.empty()) {
    // Bounded-memory replay: pull one chunk at a time into a reused
    // buffer and enqueue through the batching hot path.
    TraceStreamReader Reader;
    if (!Reader.open(StreamPath)) {
      std::fprintf(stderr, "isprof: cannot read stream %s: %s\n",
                   StreamPath.c_str(), Reader.error().c_str());
      return 1;
    }
    SymbolTable Symbols;
    for (const auto &[Id, Name] : Reader.routines())
      Symbols.intern(Name);
    Dispatcher.start(&Symbols);
    std::vector<Event> Chunk;
    uint64_t Replayed = 0;
    size_t ErrorChunk = 0;
    while (true) {
      ErrorChunk = Reader.cursor();
      if (!Reader.nextChunk(Chunk))
        break;
      EventStreamView View(Chunk);
      for (EventRecord E; View.next(E);) {
        Dispatcher.enqueue(E);
        ++Replayed;
      }
    }
    bool ReadOk = Reader.error().empty();
    Dispatcher.finish();
    if (!ReadOk) {
      std::fprintf(stderr, "isprof: stream %s: chunk %zu: %s\n",
                   StreamPath.c_str(), ErrorChunk, Reader.error().c_str());
      return 1;
    }
    std::printf("[replayed %s events from %zu chunk(s)]\n\n",
                formatWithCommas(Replayed).c_str(), Reader.chunkCount());
    Tools.printReports(&Symbols);
    return 0;
  }

  TraceData Data;
  if (!readTraceFile(TracePath, Data)) {
    std::fprintf(stderr, "isprof: cannot read trace %s\n",
                 TracePath.c_str());
    return 1;
  }
  SymbolTable Symbols;
  for (const auto &[Id, Name] : Data.Routines)
    Symbols.intern(Name);
  Dispatcher.start(&Symbols);
  for (const EventRecord &E : Data.Events)
    Dispatcher.dispatch(E);
  Dispatcher.finish();

  std::printf("[replayed %zu events]\n\n", Data.Events.size());
  Tools.printReports(&Symbols);
  return 0;
}

int commandCheckOrDisasm(OptionParser &Options, bool Disassemble) {
  if (Options.positional().size() < 2) {
    std::fprintf(stderr, "isprof: missing program file\n");
    return 2;
  }
  std::string Source;
  if (!readFile(Options.positional()[1], Source)) {
    std::fprintf(stderr, "isprof: cannot read %s\n",
                 Options.positional()[1].c_str());
    return 1;
  }
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  if (!Prog) {
    std::fputs(Diags.render().c_str(), stderr);
    return 1;
  }
  if (Options.getFlag("optimize"))
    optimizeProgram(*Prog);
  if (int Code = runStaticChecks(*Prog, Options))
    return Code;
  if (Disassemble) {
    DisasmAnnotations Notes;
    if (Options.getFlag("annotate-ranges")) {
      analysis::RangeResult RR = analysis::computeRanges(*Prog);
      analysis::EscapeResult Esc = analysis::computeEscape(*Prog);
      for (const auto &[Key, Site] : RR.Sites)
        Notes[Key] = "range=" + Site.Index.str();
      for (const auto &[Key, Site] : RR.Allocas)
        Notes[Key] = "range=" + Site.Size.str();
      for (const analysis::FrameArray &A : Esc.NeverEscaping) {
        std::string &Note = Notes[{A.Fn, A.AllocaPc}];
        if (!Note.empty())
          Note += " ";
        Note += formatString("noescape cells=%llu",
                             static_cast<unsigned long long>(A.Cells));
      }
    }
    std::fputs(disassembleProgram(*Prog, Notes.empty() ? nullptr : &Notes)
                   .c_str(),
               stdout);
  } else
    std::printf("%s: ok (%zu functions, %llu global cells)\n",
                Options.positional()[1].c_str(), Prog->Functions.size(),
                static_cast<unsigned long long>(Prog->GlobalCells));
  return 0;
}

int commandWorkload(OptionParser &Options) {
  if (Options.positional().size() < 2) {
    std::fprintf(stderr, "isprof workload: missing workload name\n");
    return 2;
  }
  const WorkloadInfo *W = findWorkload(Options.positional()[1]);
  if (!W) {
    std::fprintf(stderr, "isprof: unknown workload '%s' (try: isprof "
                         "list)\n",
                 Options.positional()[1].c_str());
    return 1;
  }
  WorkloadParams Params;
  Params.Threads = static_cast<unsigned>(Options.getInt("threads"));
  Params.Size = static_cast<uint64_t>(Options.getInt("size"));

  std::string Error;
  std::optional<Program> Prog = compileWorkload(*W, Params, &Error);
  if (!Prog) {
    std::fputs(Error.c_str(), stderr);
    return 1;
  }
  if (Options.getFlag("optimize"))
    optimizeProgram(*Prog);
  if (int Code = runStaticChecks(*Prog, Options))
    return Code;
  ToolOptions ToolOpts;
  if (!parseShadowShards(Options, &ToolOpts))
    return 2;
  ToolSet Tools;
  if (!Tools.create(Options.getString("tools"), /*Contexts=*/false,
                    ToolOpts))
    return 2;
  int ParallelWorkers = -1;
  if (!parseParallelTools(Options, &ParallelWorkers))
    return 2;
  EventDispatcher Dispatcher;
  Tools.attach(Dispatcher);
  applyParallelTools(Dispatcher, ParallelWorkers);
  if (!applyBatchCapacity(Options, Dispatcher))
    return 2;
  std::string StreamPath = Options.getString("record-stream");
  TraceStreamWriter StreamWriter;
  if (!StreamPath.empty()) {
    TraceStreamOptions StreamOpts;
    if (!parseStreamChunkBytes(Options, &StreamOpts))
      return 2;
    if (!StreamWriter.open(StreamPath, Prog->Symbols.entries(),
                           StreamOpts)) {
      std::fprintf(stderr, "isprof: %s\n", StreamWriter.error().c_str());
      return 1;
    }
    Dispatcher.setRecordSink(&StreamWriter);
  }
  MachineOptions MachineOpts;
  MachineOpts.SliceLength = static_cast<uint64_t>(Options.getInt("slice"));
  MachineOpts.Seed = static_cast<uint64_t>(Options.getInt("seed"));
  if (!parseMachineTuning(Options, &MachineOpts))
    return 2;
  Machine M(*Prog, &Dispatcher, MachineOpts);
  RunResult Result = M.run();
  if (!Result.Ok) {
    std::fprintf(stderr, "isprof: workload failed: %s\n",
                 Result.Error.c_str());
    return 1;
  }
  std::printf("%s[%s: %s instructions, %u threads]\n\n",
              Result.Output.c_str(), W->Name.c_str(),
              formatWithCommas(Result.Stats.Instructions).c_str(),
              static_cast<unsigned>(Result.Stats.ThreadsSpawned));
  if (!StreamPath.empty()) {
    if (!StreamWriter.close()) {
      std::fprintf(stderr, "isprof: %s\n", StreamWriter.error().c_str());
      return 1;
    }
    publishStreamStats(StreamWriter);
    std::printf("[stream: %s events in %s chunks -> %s (%s)]\n\n",
                formatWithCommas(StreamWriter.eventsWritten()).c_str(),
                formatWithCommas(StreamWriter.chunksWritten()).c_str(),
                StreamPath.c_str(),
                formatBytes(StreamWriter.bytesWritten()).c_str());
  }
  std::string HtmlPath = Options.getString("html");
  if (!HtmlPath.empty() && !Tools.writeHtml(HtmlPath, &Prog->Symbols))
    return 1;
  std::optional<std::map<RoutineId, unsigned>> Growth =
      staticGrowthForReports(*Prog, Options);
  Tools.printReports(&Prog->Symbols, Growth ? &*Growth : nullptr);
  return 0;
}

/// Replays \p Path under aprof-trms; returns false on failure.
bool profileTraceFile(const std::string &Path, ProfileDatabase &DbOut,
                      SymbolTable &SymbolsOut) {
  TraceData Data;
  if (!readTraceFile(Path, Data)) {
    std::fprintf(stderr, "isprof: cannot read trace %s\n", Path.c_str());
    return false;
  }
  for (const auto &[Id, Name] : Data.Routines)
    SymbolsOut.intern(Name);
  TrmsProfiler Profiler;
  replayTrace(Data.Events, Profiler, &SymbolsOut);
  DbOut = Profiler.takeDatabase();
  return true;
}

int commandDiff(OptionParser &Options) {
  if (Options.positional().size() < 3) {
    std::fprintf(stderr,
                 "isprof diff: need a baseline and a candidate trace\n");
    return 2;
  }
  ProfileDatabase BaseDb, CandDb;
  SymbolTable BaseSyms, CandSyms;
  if (!profileTraceFile(Options.positional()[1], BaseDb, BaseSyms) ||
      !profileTraceFile(Options.positional()[2], CandDb, CandSyms))
    return 1;
  std::vector<RoutineDiff> Diffs =
      diffProfiles(BaseDb, BaseSyms, CandDb, CandSyms);
  std::printf("%s", renderProfileDiff(Diffs).c_str());
  return hasRegressions(Diffs) ? 3 : 0;
}

/// Expands one `isprof collect` input: a directory is scanned for
/// stream files (by magic), anything else is taken as a stream path.
bool expandCollectInput(const std::string &Input,
                        std::vector<std::string> *Files) {
  std::error_code Ec;
  if (std::filesystem::is_directory(Input, Ec)) {
    std::string Error;
    std::vector<std::string> Found = collect::scanSpoolDir(Input, &Error);
    if (!Error.empty()) {
      std::fprintf(stderr, "isprof: %s\n", Error.c_str());
      return false;
    }
    Files->insert(Files->end(), Found.begin(), Found.end());
    return true;
  }
  Files->push_back(Input);
  return true;
}

/// Echoes every ingestion error recorded since index \p From in the
/// replay diagnostic format (file, failing chunk, reader message).
void reportIngestErrors(const collect::Collector &C, size_t From) {
  const std::vector<collect::StreamIngestError> &Errs = C.errors();
  for (size_t I = From; I != Errs.size(); ++I)
    std::fprintf(stderr, "isprof: stream %s: chunk %zu: %s\n",
                 Errs[I].File.c_str(), Errs[I].Chunk,
                 Errs[I].Message.c_str());
}

/// Decodes the collect-specific numeric options. Returns false (after a
/// diagnostic) on malformed values.
bool parseCollectOptions(const OptionParser &Options,
                         collect::CollectorOptions *Opts, unsigned *WatchMs,
                         unsigned *TopN) {
  std::string V = Options.getString("ingest-workers");
  char *End = nullptr;
  long N = std::strtol(V.c_str(), &End, 10);
  if (End == V.c_str() || *End != '\0' || N < 0 ||
      N > static_cast<long>(collect::CollectorOptions::MaxWorkers)) {
    std::fprintf(stderr,
                 "isprof: invalid --ingest-workers value '%s' (expected a "
                 "worker count in [0, %u])\n",
                 V.c_str(), collect::CollectorOptions::MaxWorkers);
    return false;
  }
  Opts->Workers = static_cast<unsigned>(N);
  Opts->RoutineFilter = splitList(Options.getString("routine"));
  Opts->ProgramLabel = Options.getString("program");
  long Watch = Options.getInt("watch");
  if (Watch < 0) {
    std::fprintf(stderr, "isprof: invalid --watch value (expected a "
                         "non-negative millisecond count)\n");
    return false;
  }
  *WatchMs = static_cast<unsigned>(Watch);
  long Top = Options.getInt("top");
  if (Top < 1) {
    std::fprintf(stderr, "isprof: invalid --top value (expected >= 1)\n");
    return false;
  }
  *TopN = static_cast<unsigned>(Top);
  return true;
}

/// `isprof collect --diff A B`: ingests both stream sets (each a file
/// or a spool directory) and compares their fleet stores.
int collectDiff(OptionParser &Options, const collect::CollectorOptions &Opts) {
  if (Options.positional().size() < 3) {
    std::fprintf(stderr, "isprof collect --diff: need a baseline and a "
                         "candidate (stream file or spool dir)\n");
    return 2;
  }
  collect::FleetStore Stores[2];
  for (int Side = 0; Side != 2; ++Side) {
    std::vector<std::string> Files;
    if (!expandCollectInput(Options.positional()[1 + Side], &Files))
      return 1;
    collect::Collector C(Opts, Stores[Side]);
    C.ingestFiles(Files);
    reportIngestErrors(C, 0);
    if (C.totals().StreamsFailed > 0)
      return 1;
    if (C.totals().Streams == 0) {
      std::fprintf(stderr, "isprof: no streams ingested from %s\n",
                   Options.positional()[1 + Side].c_str());
      return 1;
    }
  }
  std::vector<collect::FleetRoutineDelta> Deltas =
      collect::diffFleetStores(Stores[0], Stores[1]);
  std::printf("%s", collect::renderFleetDiff(Deltas).c_str());
  return collect::hasFleetRegressions(Deltas) ? 3 : 0;
}

int commandCollect(OptionParser &Options) {
  collect::CollectorOptions Opts;
  unsigned WatchMs = 0, TopN = 10;
  if (!parseCollectOptions(Options, &Opts, &WatchMs, &TopN))
    return 2;
  if (Options.getFlag("diff"))
    return collectDiff(Options, Opts);

  std::string Spool = Options.getString("spool");
  if (Options.positional().size() < 2 && Spool.empty()) {
    std::fprintf(stderr,
                 "isprof collect: need stream files and/or --spool=DIR\n");
    return 2;
  }
  std::vector<std::string> Explicit;
  for (size_t I = 1; I != Options.positional().size(); ++I)
    if (!expandCollectInput(Options.positional()[I], &Explicit))
      return 1;

  collect::FleetStore Store;
  collect::Collector C(Opts, Store);
  std::set<std::string> Seen;
  for (;;) {
    std::vector<std::string> Batch;
    for (const std::string &File : Explicit)
      if (Seen.insert(File).second)
        Batch.push_back(File);
    if (!Spool.empty()) {
      std::string Error;
      for (const std::string &File : collect::scanSpoolDir(Spool, &Error))
        if (Seen.insert(File).second)
          Batch.push_back(File);
      if (!Error.empty()) {
        std::fprintf(stderr, "isprof: %s\n", Error.c_str());
        return 1;
      }
    }
    size_t ErrorsBefore = C.errors().size();
    if (!Batch.empty())
      C.ingestFiles(Batch);
    reportIngestErrors(C, ErrorsBefore);
    // Watch mode keeps polling the spool until a stop file appears; a
    // single pass otherwise.
    if (Spool.empty() || WatchMs == 0)
      break;
    std::error_code Ec;
    if (std::filesystem::exists(Spool + "/collector.stop", Ec))
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(WatchMs));
  }

  const collect::CollectorTotals &T = C.totals();
  std::printf("[collector: %s stream(s) ingested, %s failed, %s chunks "
              "read, %s skipped, %s events, merge %s]\n\n",
              formatWithCommas(T.Streams).c_str(),
              formatWithCommas(T.StreamsFailed).c_str(),
              formatWithCommas(T.ChunksRead).c_str(),
              formatWithCommas(T.ChunksSkipped).c_str(),
              formatWithCommas(T.Events).c_str(),
              formatDuration(T.MergeNs).c_str());
  std::string GrowthSource = Options.getString("growth-source");
  if (GrowthSource.empty()) {
    std::printf("%s", Store.renderRollup(TopN).c_str());
  } else {
    std::string Source;
    if (!readFile(GrowthSource, Source)) {
      std::fprintf(stderr, "isprof: cannot read %s\n",
                   GrowthSource.c_str());
      return 1;
    }
    DiagnosticEngine Diags;
    std::optional<Program> Prog = compileProgram(Source, Diags);
    if (!Prog) {
      std::fputs(Diags.render().c_str(), stderr);
      return 1;
    }
    std::map<RoutineId, unsigned> ById = analysis::estimateGrowth(*Prog);
    // The fleet store keys routines by name, so re-key (max-merging
    // any duplicate names to stay an upper bound).
    std::map<std::string, unsigned> ByName;
    for (const Function &Fn : Prog->Functions) {
      auto It = ById.find(Fn.Id);
      if (It == ById.end())
        continue;
      unsigned &Degree = ByName[Fn.Name];
      Degree = std::max(Degree, It->second);
    }
    std::printf("%s", Store.renderRollup(TopN, ByName).c_str());
  }
  std::string Curve = Options.getString("curve");
  if (!Curve.empty())
    std::printf("\n%s", Store.renderCurve(Curve).c_str());
  return T.StreamsFailed > 0 ? 1 : 0;
}

int commandList() {
  std::printf("tools:\n");
  for (const std::string &Name : allToolNames())
    std::printf("  %s\n", Name.c_str());
  std::printf("\nworkloads:\n");
  for (const WorkloadInfo &W : allWorkloads())
    std::printf("  %-18s (%s) %s\n", W.Name.c_str(), W.Suite.c_str(),
                W.Description.c_str());
  return 0;
}

int runCommand(const std::string &Command, OptionParser &Options) {
  if (Command == "run")
    return commandRun(Options);
  if (Command == "diff")
    return commandDiff(Options);
  if (Command == "replay")
    return commandReplay(Options);
  if (Command == "collect")
    return commandCollect(Options);
  if (Command == "check")
    return commandCheckOrDisasm(Options, /*Disassemble=*/false);
  if (Command == "disasm")
    return commandCheckOrDisasm(Options, /*Disassemble=*/true);
  if (Command == "workload")
    return commandWorkload(Options);
  if (Command == "list")
    return commandList();
  std::fprintf(stderr, "isprof: unknown command '%s'\n", Command.c_str());
  return usage();
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options("isprof: input-sensitive profiling toolkit");
  Options.addOption("tools", "aprof-trms", "comma-separated tool list");
  Options.addFlag("parallel-tools",
                  "deliver event batches to tools from worker threads; "
                  "--parallel-tools=N picks the worker count (default: "
                  "auto). Reports are identical to serial delivery");
  Options.addOption("record", "", "record the event trace to this path");
  Options.addOption("record-stream", "",
                    "stream the event trace to this path as a chunked "
                    "file while the guest runs (bounded memory)");
  Options.addOption("replay-workers", "",
                    "(replay) partition stream replay across N shadow-"
                    "shard workers (streams + --tools=aprof-trms only; "
                    "0 = serial)");
  Options.addOption("replay-stream", "",
                    "(replay) replay this chunked stream file chunk by "
                    "chunk (bounded memory)");
  Options.addOption("shadow-shards", "1",
                    "shard the aprof-trms global wts shadow by address "
                    "range (power of two; 1 = unsharded). aprof-rms "
                    "keeps per-thread shadows only and is unaffected");
  Options.addOption("batch-capacity", "256",
                    "dispatcher pending-batch capacity (power of two "
                    "in [16, 65536])");
  Options.addOption("html", "", "write an HTML profile report (needs an "
                                "aprof tool in --tools)");
  Options.addFlag("contexts", "profile per calling context instead of "
                              "per routine");
  Options.addFlag("optimize", "run the bytecode peephole optimizer "
                              "(profiles are unaffected by design)");
  Options.addFlag("verify-bytecode",
                  "run the static bytecode verifier (stack discipline, "
                  "jump targets, operand bounds) and refuse to run on "
                  "failure");
  Options.addFlag("lint", "run the static lockset lint and print a "
                          "drd-style report of globals shared across "
                          "threads with no consistent lock");
  Options.addFlag("lint-bounds",
                  "run the static bounds lint and report provably "
                  "out-of-range indices and possible index overflow");
  Options.addFlag("growth-check",
                  "(run, workload) add static-vs-dynamic growth "
                  "agreement columns to profile summaries and warn on "
                  "contradictions");
  Options.addFlag("annotate-ranges",
                  "(disasm) annotate indirect-access and alloca sites "
                  "with inferred value ranges and escape facts");
  Options.addOption("growth-source", "",
                    "(collect) compile this guest source and cross-check "
                    "its static growth classes against the rollup");
  Options.addOption("slice", "150", "scheduler quantum (instructions)");
  Options.addOption("seed", "42", "guest rand()/device seed");
  Options.addOption("dispatch", "auto",
                    "interpreter dispatch: auto, switch, or threaded "
                    "(computed gotos; needs a GCC/Clang build). Profiles "
                    "are identical across modes");
  Options.addFlag("block-compile",
                  "(run, workload) execute straight-line basic blocks "
                  "from pre-compacted event templates. Profiles are "
                  "identical with or without");
  Options.addOption("threads", "4", "workload thread count");
  Options.addOption("size", "64", "workload problem scale");
  Options.addOption("stats", "off",
                    "dump pipeline self-metrics: json, csv, or off");
  Options.addOption("stats-out", "",
                    "write --stats output to this path instead of stdout");
  Options.addOption("stats-interval", "",
                    "with --stats=json --stats-out=PATH: append a live "
                    "JSONL snapshot to PATH.live every N milliseconds");
  Options.addOption("stream-chunk-bytes", "65536",
                    "(--record-stream) target chunk payload size in "
                    "bytes (power of two in [1024, 1048576])");
  Options.addOption("spool", "",
                    "(collect) also ingest every stream file in this "
                    "directory");
  Options.addOption("watch", "0",
                    "(collect, with --spool) poll the spool every N "
                    "milliseconds until <spool>/collector.stop appears");
  Options.addOption("ingest-workers", "0",
                    "(collect) concurrent ingestion threads (0 = auto)");
  Options.addOption("routine", "",
                    "(collect) comma-separated routine filter; provably "
                    "excluded chunks are skipped via v2 bitmaps");
  Options.addOption("program", "",
                    "(collect) program label for ingested streams "
                    "(default: each file's stem)");
  Options.addOption("top", "10", "(collect) rollup rows to print");
  Options.addOption("curve", "",
                    "(collect) also print this routine's full per-rms "
                    "cost curve");
  Options.addFlag("diff", "(collect) compare two stream sets: "
                          "collect --diff BASE CAND");
  Options.addOption("trace-out", "", "write a chrome://tracing / Perfetto "
                                     "timeline of the pipeline to this path");
  if (!Options.parse(Argc, Argv))
    return 2;
  if (Options.positional().empty())
    return usage();

  std::string StatsMode = Options.getString("stats");
  if (StatsMode != "off" && StatsMode != "json" && StatsMode != "csv") {
    std::fprintf(stderr,
                 "isprof: invalid --stats value '%s' (expected json, csv, "
                 "or off)\n",
                 StatsMode.c_str());
    return 2;
  }
  std::string TraceOut = Options.getString("trace-out");
  if (StatsMode != "off")
    obs::setStatsEnabled(true);
  if (!TraceOut.empty())
    obs::TraceLog::get().enable();

  std::string StatsOut = Options.getString("stats-out");
  std::string StatsIntervalStr = Options.getString("stats-interval");
  unsigned StatsIntervalMs = 0;
  if (!StatsIntervalStr.empty()) {
    char *End = nullptr;
    long N = std::strtol(StatsIntervalStr.c_str(), &End, 10);
    if (End == StatsIntervalStr.c_str() || *End != '\0' || N < 1) {
      std::fprintf(stderr,
                   "isprof: invalid --stats-interval value '%s' (expected "
                   "a positive millisecond count)\n",
                   StatsIntervalStr.c_str());
      return 2;
    }
    if (StatsMode != "json" || StatsOut.empty()) {
      std::fprintf(stderr, "isprof: --stats-interval requires --stats=json "
                           "and --stats-out=PATH\n");
      return 2;
    }
    StatsIntervalMs = static_cast<unsigned>(N);
  }
  obs::StatsHeartbeat Heartbeat;
  if (StatsIntervalMs != 0 &&
      !Heartbeat.start(StatsOut + ".live", StatsIntervalMs)) {
    std::fprintf(stderr, "isprof: cannot write live stats to %s.live\n",
                 StatsOut.c_str());
    return 2;
  }

  const std::string &Command = Options.positional()[0];
  int Code;
  {
    // Driver-level phase accounting: one span for the whole command on a
    // dedicated timeline lane, and the command wall-time as a counter.
    obs::ScopedTimer Timer(
        obs::statsEnabled()
            ? &obs::Registry::get().counter("driver.command_ns")
            : nullptr);
    obs::LaneId DriverLane =
        obs::tracingEnabled() ? obs::TraceLog::get().allocLane("driver") : 0;
    obs::ScopedSpan Span(DriverLane, "command " + Command, "driver");
    Code = runCommand(Command, Options);
  }
  Heartbeat.stop();

  if (obs::statsEnabled()) {
    struct rusage Usage;
    if (getrusage(RUSAGE_SELF, &Usage) == 0)
      obs::Registry::get()
          .gauge("process.peak_rss_bytes")
          .noteMax(static_cast<uint64_t>(Usage.ru_maxrss) * 1024);
    if (!obs::writeStatsFile(StatsOut, StatsMode == "json"
                                           ? obs::StatsFormat::Json
                                           : obs::StatsFormat::Csv)) {
      std::fprintf(stderr, "isprof: cannot write stats to %s\n",
                   StatsOut.c_str());
      if (Code == 0)
        Code = 1;
    }
  }
  if (!TraceOut.empty()) {
    if (!obs::TraceLog::get().write(TraceOut)) {
      std::fprintf(stderr, "isprof: cannot write timeline to %s\n",
                   TraceOut.c_str());
      if (Code == 0)
        Code = 1;
    } else {
      std::printf("[timeline: %zu events -> %s]\n",
                  obs::TraceLog::get().eventCount(), TraceOut.c_str());
    }
  }
  return Code;
}
