//===- tests/ObsTest.cpp - Observability subsystem tests -----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Covers the obs registry (counter/gauge/histogram semantics, the
// disabled-mode no-allocation guarantee, exporter golden output), the
// trace_event timeline, the dispatcher's flush-cause and compaction
// accounting (including the enqueued == delivered + merges + folds
// identity), and the machine's quiet-access suppression tallies.
//
// Ordering matters: the registry is a process-wide singleton, so the
// disabled-mode test and the exporter golden test run first, before any
// other test interns a metric name. gtest executes TESTs in declaration
// order within one binary.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"
#include "obs/TraceLog.h"

#include "analysis/Escape.h"
#include "analysis/LocksetLint.h"
#include "analysis/Range.h"
#include "analysis/Verifier.h"
#include "collect/Collector.h"
#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "replay/ParallelReplay.h"
#include "support/Format.h"
#include "trace/Synthetic.h"
#include "trace/TraceStream.h"
#include "tools/NulTool.h"
#include "vm/Compiler.h"
#include "vm/Machine.h"
#include "vm/Optimizer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <thread>

using namespace isp;

namespace {

//===----------------------------------------------------------------------===//
// Disabled mode (must run first: asserts nothing was ever registered)
//===----------------------------------------------------------------------===//

TEST(ObsDisabled, FullPipelineRegistersNothing) {
  obs::setStatsEnabled(false);
  ASSERT_FALSE(obs::statsEnabled());
  ASSERT_FALSE(obs::tracingEnabled());

  // Run the whole instrumented pipeline — machine, dispatcher, shadow
  // memory, profiler — with collection off. Not a single metric may be
  // interned: a disabled process pays branch tests only, never a name
  // allocation.
  TrmsProfiler Profiler;
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Profiler);
  RunResult R = compileAndRun(R"(
    fn main() {
      var sum = 0;
      for (var i = 0; i < 100; i = i + 1) { sum = sum + i; }
      print(sum);
      return 0;
    })",
                              &Dispatcher);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "4950\n");
  EXPECT_TRUE(obs::Registry::get().empty());
  EXPECT_EQ(obs::TraceLog::get().eventCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Exporters (runs on a still-pristine registry for exact golden output)
//===----------------------------------------------------------------------===//

TEST(ObsExport, JsonAndCsvGolden) {
  obs::Registry &R = obs::Registry::get();
  ASSERT_TRUE(R.empty()) << "registry polluted before the golden test";

  R.counter("alpha.events").add(7);
  R.counter("beta.events").add(41);
  R.gauge("alpha.bytes").set(2048);
  obs::Histogram &H = R.histogram("alpha.fill");
  H.record(0);
  H.record(1);
  H.record(5);
  H.record(5);

  EXPECT_EQ(R.renderJson(),
            "{\n"
            "  \"schema_version\": 1,\n"
            "  \"counters\": {\n"
            "    \"alpha.events\": 7,\n"
            "    \"beta.events\": 41\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"alpha.bytes\": 2048\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"alpha.fill\": {\"count\": 4, \"sum\": 11, \"max\": 5, "
            "\"mean\": 2.750, \"buckets\": [[0, 1], [1, 1], [4, 2]]}\n"
            "  }\n"
            "}\n");

  EXPECT_EQ(R.renderCsv(), "kind,name,value\n"
                           "counter,alpha.events,7\n"
                           "counter,beta.events,41\n"
                           "gauge,alpha.bytes,2048\n"
                           "histogram.count,alpha.fill,4\n"
                           "histogram.sum,alpha.fill,11\n"
                           "histogram.max,alpha.fill,5\n");

  // reset() zeroes values but keeps names registered and references
  // valid — bench repetitions rely on both.
  obs::Counter &Alpha = R.counter("alpha.events");
  R.reset();
  EXPECT_EQ(Alpha.value(), 0u);
  EXPECT_EQ(R.counterValues().at("beta.events"), 0u);
  EXPECT_FALSE(R.empty());
}

//===----------------------------------------------------------------------===//
// Metric primitives
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, CounterAndGauge) {
  obs::Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);

  obs::Gauge G;
  G.set(10);
  EXPECT_EQ(G.value(), 10u);
  G.noteMax(7); // lower: ignored
  EXPECT_EQ(G.value(), 10u);
  G.noteMax(99);
  EXPECT_EQ(G.value(), 99u);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  // Bucket 0 holds zeros; bucket i (i >= 1) covers [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(obs::Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(obs::Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(obs::Histogram::bucketIndex(255), 8u);
  EXPECT_EQ(obs::Histogram::bucketIndex(256), 9u);
  // Samples past 2^32 saturate into the last bucket.
  EXPECT_EQ(obs::Histogram::bucketIndex(uint64_t(1) << 40),
            obs::Histogram::NumBuckets - 1);

  EXPECT_EQ(obs::Histogram::bucketLowerBound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketLowerBound(1), 1u);
  EXPECT_EQ(obs::Histogram::bucketLowerBound(9), 256u);

  obs::Histogram H;
  H.record(0);
  H.record(3);
  H.record(300);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 303u);
  EXPECT_EQ(H.max(), 300u);
  EXPECT_DOUBLE_EQ(H.mean(), 101.0);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(9), 1u);
}

//===----------------------------------------------------------------------===//
// TraceLog
//===----------------------------------------------------------------------===//

TEST(ObsTrace, RecordsAndRendersTimeline) {
  obs::TraceLog &T = obs::TraceLog::get();
  T.enable();
  ASSERT_TRUE(obs::tracingEnabled());

  obs::LaneId Lane = T.allocLane("test lane");
  EXPECT_GE(Lane, obs::TraceLog::FirstInfraLane);
  T.completeSpan(Lane, "work", "test", 1000, 3500);
  T.instant(7, "tick", "test", 2000);
  T.counterSample("fill", 42, 2500);
  EXPECT_EQ(T.eventCount(), 3u);

  std::string Json = T.renderJson();
  // Lane-name metadata plus the three records, with nanosecond stamps
  // rendered as microseconds.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("thread_name"), std::string::npos);
  EXPECT_NE(Json.find("test lane"), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"dur\": 2.500"), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"C\""), std::string::npos);

  // ScopedSpan arms on construction and records on destruction.
  { obs::ScopedSpan Span(Lane, "scoped", "test"); }
  EXPECT_EQ(T.eventCount(), 4u);

  T.reset();
  EXPECT_FALSE(obs::tracingEnabled());
  EXPECT_EQ(T.eventCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Dispatcher accounting
//===----------------------------------------------------------------------===//

EventRecord readAt(ThreadId Tid, uint64_t Time, Addr A) {
  return {EventKind::Read, Tid, Time, static_cast<uint64_t>(A), 1};
}

TEST(ObsDispatcher, FlushCausesAndCompactionIdentity) {
  NulTool Tool;
  EventDispatcher D;
  D.addTool(&Tool);
  D.start(nullptr);

  // 600 non-adjacent reads: no merges, so the pending batch fills twice
  // (capacity 256) leaving 88 events buffered.
  uint64_t Time = 0;
  for (Addr A = 0; A != 600; ++A)
    D.enqueue(readAt(1, ++Time, 2 * A));
  EXPECT_EQ(D.flushCount(EventDispatcher::FlushCause::Capacity), 2u);

  // Manual flush of the non-empty remainder counts as Explicit.
  D.flush();
  EXPECT_EQ(D.flushCount(EventDispatcher::FlushCause::Explicit), 1u);
  // Flushing an empty batch is not a delivery and must not count.
  D.flush();
  EXPECT_EQ(D.flushCount(EventDispatcher::FlushCause::Explicit), 1u);

  // Three adjacent reads merge into the first; two basic blocks on the
  // same thread fold into one.
  D.enqueue(readAt(1, ++Time, 5000));
  D.enqueue(readAt(1, ++Time, 5001));
  D.enqueue(readAt(1, ++Time, 5002));
  D.enqueue({EventKind::BasicBlock, 1, ++Time, 0, 10});
  D.enqueue({EventKind::BasicBlock, 1, ++Time, 0, 20});
  EXPECT_EQ(D.accessMerges(), 2u);
  EXPECT_EQ(D.bbFolds(), 1u);

  D.finish();
  EXPECT_EQ(D.flushCount(EventDispatcher::FlushCause::Finish), 1u);
  EXPECT_EQ(D.totalFlushes(), 4u);

  // The exact compaction identity: every enqueued event either merged
  // into a buffered one or was delivered.
  EXPECT_EQ(D.enqueuedEvents(),
            D.deliveredEvents() + D.accessMerges() + D.bbFolds());
  EXPECT_EQ(D.enqueuedEvents(), 605u);
  EXPECT_EQ(D.deliveredEvents(), 602u);
  EXPECT_EQ(Tool.eventsSeen(), 602u);
}

TEST(ObsDispatcher, LiveRunIdentityWithStatsOn) {
  obs::setStatsEnabled(true);
  obs::Registry::get().reset();

  NulTool Tool;
  EventDispatcher D;
  D.addTool(&Tool);
  RunResult R = compileAndRun(R"(
    var table[64];
    fn main() {
      var acc = 0;
      for (var i = 0; i < 200; i = i + 1) {
        table[i % 64] = i;
        acc = acc + table[(i * 3) % 64];
      }
      print(acc);
      return 0;
    })",
                              &D);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(D.enqueuedEvents(),
            D.deliveredEvents() + D.accessMerges() + D.bbFolds());

  // finish() folded the tallies into the registry under the documented
  // names, including the per-tool delivery counter.
  std::map<std::string, uint64_t> C = obs::Registry::get().counterValues();
  EXPECT_EQ(C.at("dispatcher.enqueued_events"), D.enqueuedEvents());
  EXPECT_EQ(C.at("dispatcher.delivered_events"), D.deliveredEvents());
  EXPECT_EQ(C.at("dispatcher.access_merges"), D.accessMerges());
  EXPECT_EQ(C.at("dispatcher.bb_folds"), D.bbFolds());
  EXPECT_EQ(C.at("tool.nulgrind.events_delivered"), D.deliveredEvents());
  EXPECT_EQ(C.at("dispatcher.flushes.capacity") +
                C.at("dispatcher.flushes.explicit") +
                C.at("dispatcher.flushes.finish"),
            D.totalFlushes());

  obs::setStatsEnabled(false);
}

//===----------------------------------------------------------------------===//
// Quiet-access suppression tallies
//===----------------------------------------------------------------------===//

// A guest whose inner loop re-reads and re-writes locals — exactly the
// shape the optimizer's quiet-access pass marks.
const char *QuietGuest = R"(
  fn work(n) {
    var acc = 0;
    var tmp = 0;
    for (var i = 0; i < n; i = i + 1) {
      tmp = i + 1;
      acc = acc + tmp;
      tmp = tmp * 2;
      acc = acc + tmp;
    }
    return acc;
  }
  fn main() {
    var t1 = spawn work(200);
    var t2 = spawn work(200);
    return join(t1) + join(t2) - work(200) * 2;
  }
)";

RunStats runQuietGuest(uint64_t Slice) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(QuietGuest, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render();
  OptimizerStats Opt = optimizeProgram(*Prog);
  EXPECT_GT(Opt.QuietAccessesMarked, 0u);
  NulTool Tool;
  EventDispatcher D;
  D.addTool(&Tool);
  MachineOptions Opts;
  Opts.SliceLength = Slice;
  Machine M(*Prog, &D, Opts);
  RunResult R = M.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ExitCode, 0);
  return R.Stats;
}

TEST(ObsQuiet, SuppressionVsWindowAbortTallies) {
  // Long slices: threads run their loops uninterrupted, so quiet marks
  // are honored nearly always — many suppressions, few aborts.
  RunStats Calm = runQuietGuest(/*Slice=*/100000);
  EXPECT_GT(Calm.QuietEventsSuppressed, 0u);

  // Slice of 1: every instruction is a potential switch point, so the
  // WindowInterrupted guard keeps firing and forces marked events
  // through.
  RunStats Stormy = runQuietGuest(/*Slice=*/1);
  EXPECT_GT(Stormy.QuietWindowAborts, 0u);
  EXPECT_GT(Stormy.QuietWindowAborts, Calm.QuietWindowAborts);
  EXPECT_LT(Stormy.QuietEventsSuppressed, Calm.QuietEventsSuppressed);
}

TEST(ObsAnalysis, PassCountersAndTimersRegister) {
  // Every analysis pass folds its findings and wall time into the
  // registry: the CFG/verifier pair, points-to, the lint, and the
  // quiet-marking phase (with its indirect-mark count).
  obs::setStatsEnabled(true);
  obs::Registry &Reg = obs::Registry::get();
  uint64_t Blocks0 = Reg.counter("analysis.cfg_blocks").value();
  uint64_t Facts0 = Reg.counter("analysis.points_to_facts").value();
  uint64_t Warn0 = Reg.counter("analysis.lint_warnings").value();
  uint64_t Fail0 = Reg.counter("analysis.verifier_failures").value();
  uint64_t Indirect0 =
      Reg.counter("analysis.quiet_indirect_marked").value();

  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(R"(
    var shared;
    var a[8];
    fn worker(n) {
      shared = shared + a[2] + a[2] * n;
      return 0;
    }
    fn main() {
      var t = spawn worker(3);
      shared = 1;            // racy: written while the worker runs
      var r = join(t);
      return r;
    })",
                                               Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  optimizeProgram(*Prog);
  EXPECT_TRUE(analysis::verifyProgram(*Prog).ok());
  analysis::LintReport Lint = analysis::runLocksetLint(*Prog);
  EXPECT_FALSE(Lint.Warnings.empty());

  EXPECT_GT(Reg.counter("analysis.cfg_blocks").value(), Blocks0);
  EXPECT_GT(Reg.counter("analysis.points_to_facts").value(), Facts0);
  EXPECT_GT(Reg.counter("analysis.lint_warnings").value(), Warn0);
  EXPECT_EQ(Reg.counter("analysis.verifier_failures").value(), Fail0);
  EXPECT_GT(Reg.counter("analysis.quiet_indirect_marked").value(),
            Indirect0);
  // Pass timers accumulated real time.
  EXPECT_GT(Reg.counter("analysis.verify_ns").value(), 0u);
  EXPECT_GT(Reg.counter("analysis.points_to_ns").value(), 0u);
  EXPECT_GT(Reg.counter("analysis.lint_ns").value(), 0u);
  EXPECT_GT(Reg.counter("analysis.quiet_mark_ns").value(), 0u);

  // A corrupt program bumps the failure counter.
  Prog->Functions[0].Code[0] = {Op::Jump, 9999, 0};
  EXPECT_FALSE(analysis::verifyProgram(*Prog).ok());
  EXPECT_GT(Reg.counter("analysis.verifier_failures").value(), Fail0);
  obs::setStatsEnabled(false);
}

TEST(ObsAnalysis, RangeEscapeAndBoundsCountersExport) {
  // The value-range/escape layer publishes its own family: interval
  // facts, never-escaping frame arrays, lint warnings, and the
  // variable-index marks the covered-read certificate recovers — plus
  // wall-time for the range solve and the lint. All of them must also
  // survive both export formats.
  obs::setStatsEnabled(true);
  obs::Registry &Reg = obs::Registry::get();
  uint64_t RangeFacts0 = Reg.counter("analysis.range_facts").value();
  uint64_t Escape0 = Reg.counter("analysis.escape_objects").value();
  uint64_t Bounds0 = Reg.counter("analysis.bounds_warnings").value();
  uint64_t RangeMarked0 =
      Reg.counter("analysis.range_quiet_marked").value();

  // Fill loop covers every cell of a never-escaping frame array, so the
  // read loop's variable-index load earns a quiet mark.
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(R"(
    fn main() {
      var w[4];
      var i = 0;
      while (i < 4) {
        w[i] = i * 3;
        i = i + 1;
      }
      var total = 0;
      i = 0;
      while (i < 4) {
        total = total + w[i];
        i = i + 1;
      }
      return total;
    })",
                                               Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  (void)analysis::computeEscape(*Prog);
  optimizeProgram(*Prog);

  // A provably out-of-range store feeds the bounds-warning counter.
  std::optional<Program> Bad = compileProgram(R"(
    var a[4];
    fn main() {
      var i = rand(4) + 6;
      a[i] = 1;
      return 0;
    })",
                                              Diags);
  ASSERT_TRUE(Bad.has_value()) << Diags.render();
  analysis::BoundsReport Report = analysis::runBoundsLint(*Bad);
  EXPECT_EQ(Report.Warnings.size(), 1u);

  EXPECT_GT(Reg.counter("analysis.range_facts").value(), RangeFacts0);
  EXPECT_GT(Reg.counter("analysis.escape_objects").value(), Escape0);
  EXPECT_GT(Reg.counter("analysis.bounds_warnings").value(), Bounds0);
  EXPECT_GT(Reg.counter("analysis.range_quiet_marked").value(),
            RangeMarked0);
  EXPECT_GT(Reg.counter("analysis.range_ns").value(), 0u);
  EXPECT_GT(Reg.counter("analysis.bounds_lint_ns").value(), 0u);

  // Both exporters carry the family end-to-end.
  const std::string Json = Reg.renderJson();
  const std::string Csv = Reg.renderCsv();
  for (const char *Name :
       {"analysis.range_facts", "analysis.escape_objects",
        "analysis.bounds_warnings", "analysis.range_quiet_marked",
        "analysis.range_ns", "analysis.bounds_lint_ns"}) {
    EXPECT_NE(Json.find(formatString("\"%s\"", Name)), std::string::npos)
        << Name;
    EXPECT_NE(Csv.find(formatString("counter,%s,", Name)),
              std::string::npos)
        << Name;
  }
  obs::setStatsEnabled(false);
}

//===----------------------------------------------------------------------===//
// Parallel replay metrics
//===----------------------------------------------------------------------===//

TEST(ObsReplay, ParallelReplayPublishesMetrics) {
  obs::setStatsEnabled(true);
  obs::Registry &Reg = obs::Registry::get();
  Reg.reset();

  SyntheticTraceOptions Gen;
  Gen.NumOperations = 5000;
  Gen.Seed = 31;
  std::vector<EventRecord> Events = generateSyntheticTrace(Gen);
  std::string Path = ::testing::TempDir() + "isprof_obs_replay.strm";
  TraceStreamWriter Writer;
  ASSERT_TRUE(Writer.open(Path, {}, {})) << Writer.error();
  for (const EventRecord &E : Events)
    Writer.append(E);
  ASSERT_TRUE(Writer.close()) << Writer.error();

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  TrmsProfilerOptions Opts;
  Opts.ShadowShards = 8;
  ParallelReplayProfiler Profiler(Opts);
  ParallelReplayOptions ReplayOpts;
  ReplayOpts.Workers = 2;
  ParallelReplayStats Stats;
  ASSERT_TRUE(
      parallelReplayStream(Reader, Profiler, nullptr, ReplayOpts, &Stats))
      << Reader.error();
  std::remove(Path.c_str());

  // Counters carry the run's tallies; gauges carry its shape.
  std::map<std::string, uint64_t> C = Reg.counterValues();
  EXPECT_EQ(C.at("replay.epochs"), Stats.Epochs);
  EXPECT_EQ(C.at("replay.barrier_waits"), Stats.BarrierWaits);
  EXPECT_EQ(C.at("replay.barrier_wait_ns"), Stats.BarrierWaitNs);
  EXPECT_EQ(C.at("replay.chunks_skipped"), Stats.ChunksSkipped);
  EXPECT_EQ(Reg.gauge("replay.workers").value(), Stats.Workers);
  EXPECT_EQ(Reg.gauge("replay.queue_depth_max").value(), Stats.QueueDepthMax);
  EXPECT_GT(Stats.Epochs, 0u);

  // Both export formats surface the replay family.
  std::string Json = Reg.renderJson();
  std::string Csv = Reg.renderCsv();
  for (const char *Name :
       {"replay.epochs", "replay.barrier_waits", "replay.barrier_wait_ns",
        "replay.chunks_skipped", "replay.workers", "replay.queue_depth_max"}) {
    EXPECT_NE(Json.find(std::string("\"") + Name + "\""), std::string::npos)
        << Name;
    EXPECT_NE(Csv.find(Name), std::string::npos) << Name;
  }
  obs::setStatsEnabled(false);
}

//===----------------------------------------------------------------------===//
// Stats heartbeat (--stats-interval)
//===----------------------------------------------------------------------===//

TEST(ObsHeartbeat, EmitsAtLeastTwoWellFormedSnapshots) {
  obs::setStatsEnabled(true);
  obs::Registry::get().reset();
  obs::Registry::get().counter("heartbeat.test").add(3);

  std::string Path = ::testing::TempDir() + "isprof_heartbeat.jsonl";
  std::remove(Path.c_str());
  {
    obs::StatsHeartbeat Hb;
    ASSERT_TRUE(Hb.start(Path, /*IntervalMs=*/5));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    Hb.stop();
    // start() writes an initial snapshot and stop() a final one, so
    // even a run too short for any interval tick yields two.
    EXPECT_GE(Hb.snapshots(), 2u);
    // stop() is idempotent.
    Hb.stop();
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ASSERT_FALSE(Line.empty());
    EXPECT_EQ(Line.front(), '{') << Line;
    EXPECT_EQ(Line.back(), '}') << Line;
    EXPECT_NE(Line.find("\"schema_version\": 1"), std::string::npos) << Line;
    EXPECT_NE(Line.find(formatString("\"seq\": %zu", Lines)),
              std::string::npos)
        << Line;
    EXPECT_NE(Line.find("\"ts_ns\": "), std::string::npos) << Line;
    EXPECT_NE(Line.find("\"heartbeat.test\": 3"), std::string::npos) << Line;
    ++Lines;
  }
  EXPECT_GE(Lines, 2u);
  std::remove(Path.c_str());
  obs::setStatsEnabled(false);
}

//===----------------------------------------------------------------------===//
// Collector metrics
//===----------------------------------------------------------------------===//

TEST(ObsCollector, IngestionPublishesMetrics) {
  obs::setStatsEnabled(true);
  obs::Registry &Reg = obs::Registry::get();
  Reg.reset();

  std::vector<std::string> Paths;
  for (int I = 0; I != 2; ++I) {
    SyntheticTraceOptions Gen;
    Gen.NumOperations = 2000;
    Gen.Seed = 7 + I;
    std::string Path = ::testing::TempDir() + "isprof_obs_collect_" +
                       std::to_string(I) + ".strm";
    TraceStreamWriter Writer;
    ASSERT_TRUE(Writer.open(Path, {}, {})) << Writer.error();
    for (const EventRecord &E : generateSyntheticTrace(Gen))
      Writer.append(E);
    ASSERT_TRUE(Writer.close()) << Writer.error();
    Paths.push_back(Path);
  }

  collect::FleetStore Store;
  collect::CollectorOptions Opts;
  Opts.Workers = 2;
  collect::Collector C(Opts, Store);
  EXPECT_EQ(C.ingestFiles(Paths), 2u);
  for (const std::string &P : Paths)
    std::remove(P.c_str());

  const collect::CollectorTotals &T = C.totals();
  EXPECT_EQ(T.Streams, 2u);
  EXPECT_GT(Store.routineCount(), 0u);

  std::map<std::string, uint64_t> Cv = Reg.counterValues();
  EXPECT_EQ(Cv.at("collector.streams"), T.Streams);
  EXPECT_EQ(Cv.at("collector.streams_failed"), 0u);
  EXPECT_EQ(Cv.at("collector.decode_errors"), 0u);
  EXPECT_EQ(Cv.at("collector.chunks_read"), T.ChunksRead);
  EXPECT_EQ(Cv.at("collector.chunks_skipped"), T.ChunksSkipped);
  EXPECT_EQ(Cv.at("collector.events"), T.Events);
  EXPECT_EQ(Cv.at("collector.merge_ns"), T.MergeNs);
  EXPECT_EQ(Reg.gauge("collector.store_routines").value(),
            Store.routineCount());

  // Both export formats surface the collector family.
  std::string Json = Reg.renderJson();
  std::string Csv = Reg.renderCsv();
  for (const char *Name :
       {"collector.streams", "collector.chunks_read",
        "collector.chunks_skipped", "collector.decode_errors",
        "collector.merge_ns", "collector.store_routines"}) {
    EXPECT_NE(Json.find(std::string("\"") + Name + "\""), std::string::npos)
        << Name;
    EXPECT_NE(Csv.find(Name), std::string::npos) << Name;
  }
  obs::setStatsEnabled(false);
}

TEST(ObsQuiet, NativeRunsKeepTalliesZero) {
  // With no dispatcher attached, nothing is emitted or suppressed.
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(QuietGuest, Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  optimizeProgram(*Prog);
  Machine M(*Prog, /*Events=*/nullptr);
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.QuietEventsSuppressed, 0u);
  EXPECT_EQ(R.Stats.QuietWindowAborts, 0u);
}

} // namespace
