//===- tests/TraceStreamTest.cpp - Chunked streaming trace format --------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The chunked stream format (TraceStream.h) under test:
//
//  - round trip: append + close then chunk-by-chunk read reproduces the
//    event sequence and routine table exactly, across chunk sizes;
//  - chunks decode independently (out-of-order readChunk) — the property
//    chunk-level seek relies on;
//  - the dispatcher RecordSink hook observes a stream byte-identical to
//    the in-memory Recorded vector;
//  - writer memory (peakBufferedBytes) is bounded by one chunk no matter
//    how many events stream through;
//  - adversarial inputs — truncated chunks, corrupt footer index,
//    overlong varints inside a chunk, chunk lengths past EOF — are
//    rejected with a diagnostic, never crash, never allocate beyond what
//    the actual payload bytes can back.
//
//===----------------------------------------------------------------------===//

#include "core/TrmsProfiler.h"
#include "trace/Synthetic.h"
#include "trace/TraceStream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace isp;

namespace {

using RoutineTable = std::vector<std::pair<RoutineId, std::string>>;

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good());
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

std::vector<EventRecord> makeTrace(uint64_t Operations, uint64_t Seed,
                             unsigned Threads = 4) {
  SyntheticTraceOptions Gen;
  Gen.NumThreads = Threads;
  Gen.NumOperations = Operations;
  Gen.Seed = Seed;
  return generateSyntheticTrace(Gen);
}

/// Writes \p Events to \p Path as a stream and asserts success.
void writeStream(const std::string &Path, const std::vector<EventRecord> &Events,
                 const RoutineTable &Routines,
                 TraceStreamOptions Opts = TraceStreamOptions()) {
  TraceStreamWriter Writer;
  ASSERT_TRUE(Writer.open(Path, Routines, Opts)) << Writer.error();
  for (const EventRecord &E : Events)
    Writer.append(E);
  ASSERT_TRUE(Writer.close()) << Writer.error();
}

/// Drains every chunk of \p Reader from the start into one vector.
std::vector<EventRecord> readAll(TraceStreamReader &Reader) {
  std::vector<EventRecord> All, Chunk;
  Reader.seek(0);
  while (Reader.nextChunk(Chunk))
    All.insert(All.end(), Chunk.begin(), Chunk.end());
  return All;
}

//===----------------------------------------------------------------------===//
// Round trip and chunk independence
//===----------------------------------------------------------------------===//

TEST(TraceStream, RoundTripsExactly) {
  std::vector<EventRecord> Events = makeTrace(3000, 7);
  RoutineTable Routines = {{0, "main"}, {1, "worker"}, {9, "long_name_rtn"}};
  std::string Path = tempPath("isprof_stream_roundtrip.strm");
  writeStream(Path, Events, Routines);

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  EXPECT_EQ(Reader.routines(), Routines);
  EXPECT_EQ(Reader.eventCount(), Events.size());
  EXPECT_EQ(readAll(Reader), Events);
  EXPECT_TRUE(Reader.error().empty()) << Reader.error();
  EXPECT_TRUE(isTraceStreamFile(Path));
  std::remove(Path.c_str());
}

TEST(TraceStream, ChunksDecodeIndependently) {
  // A tiny chunk size forces many chunks; decoding them in reverse must
  // give the same per-chunk events as decoding in order, because each
  // chunk's delta state starts from a clean slate.
  std::vector<EventRecord> Events = makeTrace(2000, 8);
  TraceStreamOptions Opts;
  Opts.ChunkBytes = 256;
  std::string Path = tempPath("isprof_stream_chunks.strm");
  writeStream(Path, Events, {}, Opts);

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  ASSERT_GT(Reader.chunkCount(), 4u);

  std::vector<std::vector<EventRecord>> InOrder(Reader.chunkCount());
  uint64_t IndexedEvents = 0;
  for (size_t I = 0; I != Reader.chunkCount(); ++I) {
    ASSERT_TRUE(Reader.readChunk(I, InOrder[I])) << Reader.error();
    EXPECT_EQ(InOrder[I].size(), Reader.chunkEvents(I));
    EXPECT_EQ(InOrder[I].front().Time, Reader.chunkFirstTime(I));
    IndexedEvents += Reader.chunkEvents(I);
  }
  EXPECT_EQ(IndexedEvents, Events.size());

  std::vector<EventRecord> Chunk;
  for (size_t I = Reader.chunkCount(); I-- != 0;) {
    ASSERT_TRUE(Reader.readChunk(I, Chunk)) << Reader.error();
    EXPECT_EQ(Chunk, InOrder[I]) << "chunk " << I;
  }

  std::vector<EventRecord> All;
  for (const auto &C : InOrder)
    All.insert(All.end(), C.begin(), C.end());
  EXPECT_EQ(All, Events);
  std::remove(Path.c_str());
}

TEST(TraceStream, SeekResumesMidStream) {
  std::vector<EventRecord> Events = makeTrace(2000, 9);
  TraceStreamOptions Opts;
  Opts.ChunkBytes = 512;
  std::string Path = tempPath("isprof_stream_seek.strm");
  writeStream(Path, Events, {}, Opts);

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  ASSERT_GT(Reader.chunkCount(), 2u);

  // chunkIndexForTime finds the last chunk starting at or before Time.
  EXPECT_EQ(Reader.chunkIndexForTime(0), 0u);
  EXPECT_EQ(Reader.chunkIndexForTime(UINT64_MAX), Reader.chunkCount() - 1);
  for (size_t I = 0; I != Reader.chunkCount(); ++I)
    EXPECT_EQ(Reader.chunkIndexForTime(Reader.chunkFirstTime(I)), I);

  // Replay resumed from a mid-stream chunk yields exactly the tail.
  size_t Mid = Reader.chunkCount() / 2;
  uint64_t Skipped = 0;
  for (size_t I = 0; I != Mid; ++I)
    Skipped += Reader.chunkEvents(I);
  Reader.seek(Mid);
  std::vector<EventRecord> Tail, Chunk;
  while (Reader.nextChunk(Chunk))
    Tail.insert(Tail.end(), Chunk.begin(), Chunk.end());
  ASSERT_TRUE(Reader.error().empty()) << Reader.error();
  ASSERT_EQ(Tail.size(), Events.size() - Skipped);
  for (size_t I = 0; I != Tail.size(); ++I)
    EXPECT_EQ(Tail[I], Events[Skipped + I]);
  std::remove(Path.c_str());
}

TEST(TraceStream, EmptyStreamIsValid) {
  RoutineTable Routines = {{3, "only"}};
  std::string Path = tempPath("isprof_stream_empty.strm");
  writeStream(Path, {}, Routines);

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  EXPECT_EQ(Reader.chunkCount(), 0u);
  EXPECT_EQ(Reader.eventCount(), 0u);
  EXPECT_EQ(Reader.routines(), Routines);
  std::vector<EventRecord> Chunk;
  EXPECT_FALSE(Reader.nextChunk(Chunk));
  EXPECT_TRUE(Reader.error().empty()) << Reader.error();
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Dispatcher integration: sink identity, bounded writer memory
//===----------------------------------------------------------------------===//

TEST(TraceStream, SinkObservesExactlyTheRecordedStream) {
  // The RecordSink contract: a sink sees the same compacted stream the
  // in-memory recorder accumulates, batch for batch. Recording into a
  // stream file and reading it back must therefore reproduce the
  // Recorded vector exactly.
  std::vector<EventRecord> Raw = makeTrace(4000, 10);
  std::string Path = tempPath("isprof_stream_sink.strm");

  TraceStreamWriter Writer;
  ASSERT_TRUE(Writer.open(Path, {}));
  EventDispatcher Dispatcher;
  Dispatcher.enableRecording();
  Dispatcher.setRecordSink(&Writer);
  Dispatcher.start(nullptr);
  for (const EventRecord &E : Raw)
    Dispatcher.enqueue(E);
  Dispatcher.finish();
  ASSERT_TRUE(Writer.close()) << Writer.error();
  EXPECT_EQ(Writer.eventsWritten(),
            packedEventCount(Dispatcher.recordedEvents()));

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  EXPECT_EQ(readAll(Reader), Dispatcher.decodedRecordedEvents());
  EXPECT_TRUE(Reader.error().empty()) << Reader.error();
  std::remove(Path.c_str());
}

TEST(TraceStream, StreamedReplayMatchesInMemoryProfile) {
  // Profile equivalence end to end: replaying a stream file through
  // replayTraceStream gives the same trms database as batched in-memory
  // replay of the identical event sequence.
  for (uint64_t Seed : {11u, 12u}) {
    std::vector<EventRecord> Events = makeTrace(5000, Seed);
    std::string Path = tempPath("isprof_stream_profile.strm");
    writeStream(Path, Events, {});

    TrmsProfilerOptions ProfOpts;
    ProfOpts.KeepActivationLog = true;
    TrmsProfiler InMemory(ProfOpts);
    replayTraceBatched(Events, InMemory);

    TraceStreamReader Reader;
    ASSERT_TRUE(Reader.open(Path)) << Reader.error();
    TrmsProfiler Streamed(ProfOpts);
    ASSERT_TRUE(replayTraceStream(Reader, Streamed)) << Reader.error();

    const ProfileDatabase &A = InMemory.database();
    const ProfileDatabase &B = Streamed.database();
    ASSERT_EQ(A.log().size(), B.log().size());
    for (size_t I = 0; I != A.log().size(); ++I)
      ASSERT_EQ(A.log()[I], B.log()[I]) << "activation " << I;
    EXPECT_EQ(A.GlobalReads, B.GlobalReads);
    EXPECT_EQ(A.GlobalInducedThread, B.GlobalInducedThread);
    std::remove(Path.c_str());
  }
}

TEST(TraceStream, WriterMemoryIsBoundedByOneChunk) {
  // The bounded-memory claim at unit scale: the writer's only variable
  // memory is the open-chunk buffer, whose high-water mark is one chunk
  // plus at most one encoded event — independent of stream length.
  TraceStreamOptions Opts;
  Opts.ChunkBytes = 1024;
  const uint64_t MaxEncodedEvent = 1 + 4 * 10; // kind byte + four varints
  for (uint64_t Operations : {1000u, 10000u}) {
    std::vector<EventRecord> Events = makeTrace(Operations, 13);
    std::string Path = tempPath("isprof_stream_bounded.strm");
    TraceStreamWriter Writer;
    ASSERT_TRUE(Writer.open(Path, {}, Opts));
    for (const EventRecord &E : Events)
      Writer.append(E);
    EXPECT_LE(Writer.peakBufferedBytes(), Opts.ChunkBytes + MaxEncodedEvent)
        << "at " << Operations << " events";
    ASSERT_TRUE(Writer.close());
    std::remove(Path.c_str());
  }
}

//===----------------------------------------------------------------------===//
// Adversarial inputs: reject with a diagnostic, never crash
//===----------------------------------------------------------------------===//

/// Unsigned LEB128 append, mirroring the writer, for hand-building
/// hostile streams.
void appendVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

void appendU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Hand-builds syntactically valid stream files around arbitrary chunk
/// payloads, so single fields can be made hostile in isolation.
struct StreamBuilder {
  std::string Bytes;
  struct IndexEntry {
    uint64_t Offset, Events, FirstTime;
  };
  std::vector<IndexEntry> Index;

  StreamBuilder() {
    Bytes.assign("ISPSTM01", 8);
    appendVarint(Bytes, 0); // empty routine table
  }
  /// Appends a chunk; \p Events is what the footer index will claim.
  void addChunk(const std::string &Payload, uint64_t Events,
                uint64_t FirstTime = 1) {
    Index.push_back({Bytes.size(), Events, FirstTime});
    appendU32(Bytes, static_cast<uint32_t>(Payload.size()));
    Bytes += Payload;
  }
  std::string finish() {
    uint64_t FooterOffset = Bytes.size();
    appendVarint(Bytes, Index.size());
    for (const IndexEntry &E : Index) {
      appendVarint(Bytes, E.Offset);
      appendVarint(Bytes, E.Events);
      appendVarint(Bytes, E.FirstTime);
    }
    appendU64(Bytes, FooterOffset);
    Bytes.append("ISPSTMIX", 8);
    return Bytes;
  }
};

/// One well-formed encoded event for hand-built payloads.
void appendEvent(std::string &Out, uint64_t Tid = 0, uint64_t TimeDelta = 1,
                 uint64_t Arg0Zigzag = 0, uint64_t Arg1 = 0) {
  Out.push_back(0); // smallest valid kind
  appendVarint(Out, Tid);
  appendVarint(Out, TimeDelta);
  appendVarint(Out, Arg0Zigzag);
  appendVarint(Out, Arg1);
}

/// Opens the stream in \p Bytes and, if the index parses, tries to read
/// every chunk. Returns the first diagnostic hit, or "" when the whole
/// file was accepted. Must never crash, whatever the input.
std::string probeStream(const std::string &Bytes, const char *Name) {
  std::string Path = tempPath(Name);
  writeFile(Path, Bytes);
  TraceStreamReader Reader;
  std::string Diag;
  if (!Reader.open(Path)) {
    Diag = Reader.error();
    EXPECT_FALSE(Diag.empty()) << "rejection must carry a diagnostic";
  } else {
    std::vector<EventRecord> Chunk;
    for (size_t I = 0; I != Reader.chunkCount() && Diag.empty(); ++I)
      if (!Reader.readChunk(I, Chunk))
        Diag = Reader.error();
  }
  std::remove(Path.c_str());
  return Diag;
}

TEST(TraceStreamHardening, RejectsOverlongVarintInsideChunk) {
  // A time-delta varint with eleven continuation bytes: more than any
  // uint64 can need. The chunk framing is valid, so only the in-chunk
  // varint decoder can catch it.
  std::string Payload;
  appendVarint(Payload, 1); // event count
  Payload.push_back(0);     // kind
  appendVarint(Payload, 0); // tid
  for (int I = 0; I != 11; ++I)
    Payload.push_back(static_cast<char>(0x81));
  Payload.push_back(0x00);  // the overlong time delta
  appendVarint(Payload, 0); // arg0
  appendVarint(Payload, 0); // arg1
  StreamBuilder B;
  B.addChunk(Payload, 1);
  std::string Diag = probeStream(B.finish(), "isprof_stream_overlong.strm");
  EXPECT_NE(Diag.find("corrupt chunk"), std::string::npos) << Diag;

  // Ten bytes with payload past bit 63 — the wrap-silently classic.
  std::string Wrap;
  appendVarint(Wrap, 1);
  Wrap.push_back(0);
  appendVarint(Wrap, 0);
  for (int I = 0; I != 9; ++I)
    Wrap.push_back(static_cast<char>(0x80));
  Wrap.push_back(0x02); // bit 64
  appendVarint(Wrap, 0);
  appendVarint(Wrap, 0);
  StreamBuilder B2;
  B2.addChunk(Wrap, 1);
  Diag = probeStream(B2.finish(), "isprof_stream_overlong2.strm");
  EXPECT_NE(Diag.find("corrupt chunk"), std::string::npos) << Diag;
}

TEST(TraceStreamHardening, RejectsChunkLengthPastEOF) {
  // Patch a valid single-chunk file's u32 length prefix to run past the
  // footer (and the file): the read must be refused before any payload
  // I/O is attempted.
  std::string Payload;
  appendVarint(Payload, 1);
  appendEvent(Payload);
  StreamBuilder B;
  B.addChunk(Payload, 1);
  std::string Bytes = B.finish();
  size_t LenAt = B.Index[0].Offset;
  for (uint32_t Hostile : {0xffffffffu, 0u}) {
    std::string Mutated = Bytes;
    for (int I = 0; I != 4; ++I)
      Mutated[LenAt + I] = static_cast<char>((Hostile >> (8 * I)) & 0xff);
    std::string Diag = probeStream(Mutated, "isprof_stream_pasteof.strm");
    EXPECT_NE(Diag.find("payload length out of bounds"), std::string::npos)
        << "length " << Hostile << ": " << Diag;
  }
}

TEST(TraceStreamHardening, RejectsEventCountDisagreement) {
  // Payload says two events, footer index says one: the cross-check
  // must refuse rather than trust either side.
  std::string Payload;
  appendVarint(Payload, 2);
  appendEvent(Payload, 0, 1);
  appendEvent(Payload, 0, 1);
  StreamBuilder B;
  B.addChunk(Payload, /*Events=*/1);
  std::string Diag = probeStream(B.finish(), "isprof_stream_disagree.strm");
  EXPECT_NE(Diag.find("disagrees with footer index"), std::string::npos)
      << Diag;
}

TEST(TraceStreamHardening, RejectsHugeEventCountWithoutAllocating) {
  // A claimed in-chunk count of 2^60 over a few payload bytes must be
  // clamped before Out.reserve() tries to honour it. (If the clamp were
  // missing this test would OOM, not just fail.)
  std::string Payload;
  appendVarint(Payload, uint64_t(1) << 60);
  appendEvent(Payload);
  StreamBuilder B;
  B.addChunk(Payload, uint64_t(1) << 60);
  std::string Diag = probeStream(B.finish(), "isprof_stream_hugecount.strm");
  EXPECT_NE(Diag.find("exceeds payload bytes"), std::string::npos) << Diag;

  // Same for the footer's chunk count: nothing may be reserved for
  // entries the index bytes cannot encode.
  StreamBuilder B2;
  std::string P2;
  appendVarint(P2, 1);
  appendEvent(P2);
  B2.addChunk(P2, 1);
  std::string Bytes = B2.finish();
  // Rebuild the footer with a hostile chunk count but keep the trailer
  // pointing at it.
  std::string Hostile(Bytes.begin(),
                      Bytes.begin() + static_cast<long>(B2.Index[0].Offset) +
                          4 + static_cast<long>(P2.size()));
  uint64_t FooterOffset = Hostile.size();
  appendVarint(Hostile, uint64_t(1) << 58);
  appendU64(Hostile, FooterOffset);
  Hostile.append("ISPSTMIX", 8);
  Diag = probeStream(Hostile, "isprof_stream_hugechunks.strm");
  EXPECT_NE(Diag.find("corrupt footer"), std::string::npos) << Diag;
}

TEST(TraceStreamHardening, RejectsCorruptTrailer) {
  std::vector<EventRecord> Events = makeTrace(200, 14);
  std::string Path = tempPath("isprof_stream_trailer.strm");
  writeStream(Path, Events, {});
  std::string Bytes = readFile(Path);
  std::remove(Path.c_str());
  ASSERT_GE(Bytes.size(), 16u);

  std::string BadMagic = Bytes;
  BadMagic[BadMagic.size() - 1] ^= 0x01;
  std::string Diag = probeStream(BadMagic, "isprof_stream_badmagic.strm");
  EXPECT_NE(Diag.find("bad trailer magic"), std::string::npos) << Diag;

  for (uint64_t Hostile : {uint64_t(0), ~uint64_t(0), uint64_t(Bytes.size())}) {
    std::string BadOffset = Bytes;
    for (int I = 0; I != 8; ++I)
      BadOffset[BadOffset.size() - 16 + I] =
          static_cast<char>((Hostile >> (8 * I)) & 0xff);
    Diag = probeStream(BadOffset, "isprof_stream_badoffset.strm");
    EXPECT_FALSE(Diag.empty()) << "footer offset " << Hostile << " accepted";
  }
}

TEST(TraceStreamHardening, TruncationFuzzNeverAccepted) {
  // Every proper prefix of a valid stream is missing bytes the trailer
  // promises; all of them must be rejected at open(), with a diagnostic.
  std::vector<EventRecord> Events = makeTrace(400, 15);
  TraceStreamOptions Opts;
  Opts.ChunkBytes = 128; // many chunks, so truncation lands everywhere
  std::string Path = tempPath("isprof_stream_truncsrc.strm");
  writeStream(Path, Events, {{0, "f"}, {1, "g"}}, Opts);
  std::string Bytes = readFile(Path);
  std::remove(Path.c_str());
  ASSERT_GT(Bytes.size(), 100u);

  std::string TruncPath = tempPath("isprof_stream_trunc.strm");
  for (size_t Len = 0; Len < Bytes.size(); Len += 7) {
    writeFile(TruncPath, Bytes.substr(0, Len));
    TraceStreamReader Reader;
    EXPECT_FALSE(Reader.open(TruncPath))
        << "prefix of length " << Len << " accepted";
    EXPECT_FALSE(Reader.error().empty());
  }
  std::remove(TruncPath.c_str());
}

TEST(TraceStreamHardening, CorruptFooterIndexFuzz) {
  // Flip every footer-index byte: the reader must either refuse the
  // file, refuse some chunk, or — when the flip lands in a field with
  // no bearing on decoding (a chunk's FirstTime seek key) — still
  // reproduce the original events exactly. Silent wrong decodes and
  // crashes are the failures being hunted.
  std::vector<EventRecord> Events = makeTrace(600, 16);
  TraceStreamOptions Opts;
  Opts.ChunkBytes = 256;
  std::string Path = tempPath("isprof_stream_footersrc.strm");
  writeStream(Path, Events, {}, Opts);
  std::string Bytes = readFile(Path);
  std::remove(Path.c_str());

  uint64_t FooterOffset = 0;
  for (int I = 0; I != 8; ++I)
    FooterOffset |= static_cast<uint64_t>(static_cast<unsigned char>(
                        Bytes[Bytes.size() - 16 + I]))
                    << (8 * I);
  ASSERT_LT(FooterOffset, Bytes.size() - 16);

  std::string MutPath = tempPath("isprof_stream_footermut.strm");
  for (size_t Pos = FooterOffset; Pos != Bytes.size() - 16; ++Pos) {
    for (int Bit : {0, 6}) {
      std::string Mutated = Bytes;
      Mutated[Pos] = static_cast<char>(Mutated[Pos] ^ (1 << Bit));
      writeFile(MutPath, Mutated);
      TraceStreamReader Reader;
      if (!Reader.open(MutPath)) {
        EXPECT_FALSE(Reader.error().empty());
        continue;
      }
      std::vector<EventRecord> All, Chunk;
      bool Failed = false;
      for (size_t I = 0; I != Reader.chunkCount() && !Failed; ++I) {
        if (!Reader.readChunk(I, Chunk))
          Failed = true;
        else
          All.insert(All.end(), Chunk.begin(), Chunk.end());
      }
      if (!Failed) {
        EXPECT_EQ(All, Events)
            << "footer byte " << (Pos - FooterOffset) << " bit " << Bit
            << " silently changed the decoded stream";
      }
    }
  }
  std::remove(MutPath.c_str());
}

TEST(TraceStreamHardening, BitFlipFuzzNeverCrashes) {
  // Whole-file bit flips: acceptance is fine when the flip lands in a
  // payload byte; the contract is no crash, no unbounded allocation.
  std::vector<EventRecord> Events = makeTrace(300, 17);
  TraceStreamOptions Opts;
  Opts.ChunkBytes = 512;
  std::string Path = tempPath("isprof_stream_flipsrc.strm");
  writeStream(Path, Events, {{0, "main"}}, Opts);
  std::string Bytes = readFile(Path);
  std::remove(Path.c_str());

  std::string MutPath = tempPath("isprof_stream_flip.strm");
  for (size_t Pos = 0; Pos < Bytes.size(); Pos += 3) {
    for (int Bit : {0, 3, 7}) {
      std::string Mutated = Bytes;
      Mutated[Pos] = static_cast<char>(Mutated[Pos] ^ (1 << Bit));
      writeFile(MutPath, Mutated);
      TraceStreamReader Reader;
      if (Reader.open(MutPath)) {
        std::vector<EventRecord> Chunk;
        while (Reader.nextChunk(Chunk)) {
        }
      }
    }
  }
  std::remove(MutPath.c_str());
}

//===----------------------------------------------------------------------===//
// Format v2: per-chunk activity masks
//===----------------------------------------------------------------------===//

TEST(TraceStreamV2, ActivityMasksRoundTrip) {
  // One chunk: routine 3 called, memory confined to shadow-chunk keys
  // 0 and 5. The footer masks must name exactly those.
  std::vector<EventRecord> Events;
  Events.push_back(EventRecord::threadStart(0, 1, 0));
  Events.push_back(EventRecord::call(0, 2, 3));
  Events.push_back(EventRecord::write(0, 3, 16, 4));        // key 0
  Events.push_back(EventRecord::read(0, 4, 5 * 512 + 7, 2)); // key 5
  Events.push_back(EventRecord::ret(0, 5, 3, 0));
  Events.push_back(EventRecord::threadEnd(0, 6));
  std::string Path = tempPath("isprof_stream_v2masks.strm");
  writeStream(Path, Events, {});

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  EXPECT_EQ(Reader.formatVersion(), 3u);
  ASSERT_TRUE(Reader.hasActivityMasks());
  ASSERT_TRUE(Reader.hasWrittenMasks());
  ASSERT_EQ(Reader.chunkCount(), 1u);
  EXPECT_EQ(Reader.chunkRoutineMask(0), uint64_t(1) << 3);
  const ShardActivityMask &Mask = Reader.chunkShardMask(0);
  EXPECT_EQ(Mask[0], (uint64_t(1) << 0) | (uint64_t(1) << 5));
  EXPECT_EQ(Mask[1], 0u);
  EXPECT_EQ(Mask[2], 0u);
  EXPECT_EQ(Mask[3], 0u);
  // Only the write touches the written mask; the read's key 5 stays out.
  const ShardActivityMask &Written = Reader.chunkWrittenMask(0);
  EXPECT_EQ(Written[0], uint64_t(1) << 0);
  EXPECT_EQ(Written[1], 0u);
  EXPECT_EQ(Written[2], 0u);
  EXPECT_EQ(Written[3], 0u);
  EXPECT_EQ(readAll(Reader), Events);
  std::remove(Path.c_str());
}

TEST(TraceStreamV2, WideRangeSaturatesShardMask) {
  // A single access spanning more shadow chunks than there are mask
  // slots degrades to the all-ones superset rather than wrapping.
  std::vector<EventRecord> Events;
  Events.push_back(EventRecord::threadStart(0, 1, 0));
  Events.push_back(EventRecord::write(0, 2, 0, 300 * 512));
  Events.push_back(EventRecord::threadEnd(0, 3));
  std::string Path = tempPath("isprof_stream_v2wide.strm");
  writeStream(Path, Events, {});

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  const ShardActivityMask &Mask = Reader.chunkShardMask(0);
  for (uint64_t Word : Mask)
    EXPECT_EQ(Word, ~uint64_t(0));
  std::remove(Path.c_str());
}

TEST(TraceStreamV2, Version1ModeInteroperates) {
  // FormatVersion=1 writes the old magic with a mask-less footer; the
  // reader accepts it and reports conservative all-ones masks.
  std::vector<EventRecord> Events = makeTrace(500, 18);
  std::string Path = tempPath("isprof_stream_v1compat.strm");
  TraceStreamOptions Opts;
  Opts.FormatVersion = 1;
  writeStream(Path, Events, {{0, "main"}}, Opts);

  EXPECT_EQ(readFile(Path).substr(0, 8), "ISPSTM01");
  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  EXPECT_EQ(Reader.formatVersion(), 1u);
  EXPECT_FALSE(Reader.hasActivityMasks());
  EXPECT_EQ(Reader.chunkRoutineMask(0), ~uint64_t(0));
  for (uint64_t Word : Reader.chunkShardMask(0))
    EXPECT_EQ(Word, ~uint64_t(0));
  EXPECT_EQ(readAll(Reader), Events);
  std::remove(Path.c_str());
}

TEST(TraceStreamV2, UnknownVersionsRejected) {
  // A hypothetical v9 stream and a bogus writer request both fail
  // cleanly instead of being misparsed.
  std::vector<EventRecord> Events = makeTrace(100, 19);
  std::string Path = tempPath("isprof_stream_v9.strm");
  writeStream(Path, Events, {});
  std::string Bytes = readFile(Path);
  Bytes[7] = '9';
  writeFile(Path, Bytes);
  TraceStreamReader Reader;
  EXPECT_FALSE(Reader.open(Path));
  EXPECT_NE(Reader.error().find("bad magic or unsupported version"),
            std::string::npos)
      << Reader.error();
  std::remove(Path.c_str());

  TraceStreamWriter Writer;
  TraceStreamOptions Bad;
  Bad.FormatVersion = 7;
  EXPECT_FALSE(Writer.open(tempPath("isprof_stream_badver.strm"), {}, Bad));
  EXPECT_NE(Writer.error().find("unsupported trace stream format version"),
            std::string::npos);
}

TEST(TraceStreamV2, TruncatedMasksRejected) {
  // A v2 footer whose entries lack the activity-mask words must be
  // rejected, not silently read past.
  StreamBuilder Builder;
  Builder.Bytes[7] = '2'; // v2 magic over the v1 template
  std::string Payload;
  appendVarint(Payload, 1);
  appendEvent(Payload);
  // The huge FirstTime makes the mask-less entry wide enough to pass
  // the footer size clamp, so the mask read itself is what trips.
  Builder.addChunk(Payload, 1, /*FirstTime=*/~uint64_t(0));
  // finish() writes v1-style (mask-less) footer entries.
  std::string Diag = probeStream(Builder.finish(), "isprof_stream_v2trunc.strm");
  EXPECT_NE(Diag.find("truncated activity masks"), std::string::npos) << Diag;
}

} // namespace
