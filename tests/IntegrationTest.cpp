//===- tests/IntegrationTest.cpp - Cross-module integration tests --------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// End-to-end flows across module boundaries:
//  - live VM profiling == record-then-replay profiling,
//  - trace files survive serialization with identical profiles,
//  - per-thread splitting + timestamped merging (Section 4's offline
//    pipeline) reproduces the profile for any tie-break policy,
//  - the complete VM -> trms -> metrics -> report pipeline emits sane
//    artefacts for a multithreaded program.
//
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "core/Report.h"
#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "trace/Synthetic.h"
#include "trace/TraceFile.h"
#include "trace/TraceMerger.h"
#include "vm/Compiler.h"
#include "vm/Machine.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

const char *PipelineSource = R"(
var shared[16];
var lk;
fn stage_a(rounds) {
  var r = 0;
  while (r < rounds) {
    lock_acquire(lk);
    var i = 0;
    while (i < 16) { shared[i] = shared[i] + r + i; i = i + 1; }
    lock_release(lk);
    yield();
    r = r + 1;
  }
  return 0;
}
fn stage_b(rounds) {
  var acc = 0;
  var r = 0;
  while (r < rounds) {
    lock_acquire(lk);
    var i = 0;
    while (i < 16) { acc = acc + shared[i]; i = i + 1; }
    lock_release(lk);
    yield();
    r = r + 1;
  }
  return acc;
}
fn main() {
  lk = lock_create();
  sysread(1, shared, 16);
  var a = spawn stage_a(12);
  var b = spawn stage_b(12);
  join(a);
  var result = join(b);
  syswrite(2, shared, 16);
  print(result % 1000003);
  return 0;
}
)";

std::vector<ActivationRecord> liveProfile(const Program &Prog,
                                          std::vector<EventRecord> *TraceOut) {
  TrmsProfilerOptions Opts;
  Opts.KeepActivationLog = true;
  TrmsProfiler Profiler(Opts);
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Profiler);
  if (TraceOut)
    Dispatcher.enableRecording();
  Machine M(Prog, &Dispatcher);
  RunResult R = M.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  if (TraceOut)
    *TraceOut = Dispatcher.takeRecordedEvents();
  return Profiler.database().log();
}

std::vector<ActivationRecord>
replayProfile(const std::vector<EventRecord> &Trace) {
  TrmsProfilerOptions Opts;
  Opts.KeepActivationLog = true;
  TrmsProfiler Profiler(Opts);
  replayTrace(Trace, Profiler);
  return Profiler.database().log();
}

TEST(Integration, LiveEqualsRecordedReplay) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(PipelineSource, Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();

  std::vector<EventRecord> Trace;
  auto Live = liveProfile(*Prog, &Trace);
  ASSERT_FALSE(Trace.empty());
  auto Replayed = replayProfile(Trace);
  EXPECT_EQ(Live, Replayed);
}

TEST(Integration, TraceFileRoundTripPreservesProfile) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(PipelineSource, Diags);
  ASSERT_TRUE(Prog.has_value());

  std::vector<EventRecord> Trace;
  auto Live = liveProfile(*Prog, &Trace);

  TraceData Data;
  Data.Routines = Prog->Symbols.entries();
  Data.Events = std::move(Trace);
  std::string Bytes = serializeTrace(Data);
  TraceData Back;
  ASSERT_TRUE(deserializeTrace(Bytes, Back));
  EXPECT_EQ(replayProfile(Back.Events), Live);
}

TEST(Integration, SplitMergeReplayMatchesForAllPolicies) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(PipelineSource, Diags);
  ASSERT_TRUE(Prog.has_value());

  std::vector<EventRecord> Trace;
  auto Live = liveProfile(*Prog, &Trace);
  auto PerThread = splitByThread(Trace);
  EXPECT_GE(PerThread.size(), 3u);

  // VM event times are unique, so no ties exist and every policy must
  // reconstruct the same total order (hence the same profile).
  for (TieBreakPolicy Policy :
       {TieBreakPolicy::ByThreadId, TieBreakPolicy::RoundRobin,
        TieBreakPolicy::SeededRandom}) {
    TraceMergeOptions Opts;
    Opts.Policy = Policy;
    std::vector<EventRecord> Merged = mergeTraces(PerThread, Opts);
    EXPECT_EQ(replayProfile(Merged), Live)
        << "policy " << static_cast<int>(Policy);
  }
}

TEST(Integration, MergedSyntheticTracesTieBreakConsistency) {
  // With artificial ties, different policies may yield different yet
  // *valid* profiles; the analysis must at minimum stay self-consistent
  // (Inequality 1, non-negative sizes) under each.
  SyntheticTraceOptions Gen;
  Gen.NumThreads = 4;
  Gen.NumOperations = 4000;
  Gen.Seed = 23;
  std::vector<EventRecord> Base = generateSyntheticTrace(Gen);
  // Collapse timestamps to create many cross-thread ties.
  for (EventRecord &E : Base)
    E.Time = (E.Time + 2) / 3;
  auto PerThread = splitByThread(Base);
  ASSERT_TRUE(verifyThreadTraces(PerThread));

  for (uint64_t Seed : {1u, 2u, 3u}) {
    TraceMergeOptions Opts;
    Opts.Policy = TieBreakPolicy::SeededRandom;
    Opts.Seed = Seed;
    std::vector<EventRecord> Merged = mergeTraces(PerThread, Opts);
    auto Log = replayProfile(Merged);
    ASSERT_FALSE(Log.empty());
    for (const ActivationRecord &R : Log)
      ASSERT_GE(R.Trms, R.Rms);
  }
}

TEST(Integration, FullPipelineProducesReports) {
  const WorkloadInfo *W = findWorkload("dbserver");
  ASSERT_NE(W, nullptr);
  WorkloadParams P;
  P.Threads = 3;
  P.Size = 40;
  ProfiledRun Run = profileWorkload(*W, P);
  ASSERT_TRUE(Run.Run.Ok) << Run.Run.Error;

  std::string Summary = renderRunSummary(Run.Profile, &Run.Symbols);
  EXPECT_NE(Summary.find("mysql_select"), std::string::npos);
  EXPECT_NE(Summary.find("input volume"), std::string::npos);

  auto Metrics = computeRoutineMetrics(Run.Profile);
  EXPECT_GT(Metrics.size(), 5u);
  std::vector<double> Volumes;
  for (const RoutineMetrics &M : Metrics)
    Volumes.push_back(M.InputVolume);
  auto Tail = tailDistribution(Volumes);
  ASSERT_FALSE(Tail.empty());
  EXPECT_GT(Tail.front().second, 0.0) << "no routine with induced input";
}

TEST(Integration, RenumberingUnderLiveVmMatchesDefault) {
  const WorkloadInfo *W = findWorkload("dedup");
  ASSERT_NE(W, nullptr);
  WorkloadParams P;
  P.Threads = 3;
  P.Size = 24;

  TrmsProfilerOptions Default;
  Default.KeepActivationLog = true;
  TrmsProfilerOptions Tiny = Default;
  Tiny.CounterLimit = 2048;

  ProfiledRun A = profileWorkload(*W, P, Default);
  ProfiledRun B = profileWorkload(*W, P, Tiny);
  ASSERT_TRUE(A.Run.Ok && B.Run.Ok);
  EXPECT_EQ(A.Profile.log(), B.Profile.log());
}

} // namespace

//===----------------------------------------------------------------------===//
// Context-sensitive profiling (ContextAdapter)
//===----------------------------------------------------------------------===//

#include "instr/ContextAdapter.h"

namespace {

const char *ContextSource = R"(
var data[128];
fn leaf(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) { s = s + data[i]; }
  return s;
}
fn viaSmall() { return leaf(4); }
fn viaBig() { return leaf(64); }
fn main() {
  for (var i = 0; i < 128; i = i + 1) { data[i] = i; }
  var acc = 0;
  for (var r = 0; r < 6; r = r + 1) {
    acc = acc + viaSmall() + viaBig();
  }
  print(acc);
  return 0;
}
)";

TEST(ContextAdapter, SplitsRoutineProfilesByCallPath) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(ContextSource, Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();

  TrmsProfilerOptions Opts;
  TrmsProfiler Inner(Opts);
  ContextAdapter Adapter(Inner);
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Adapter);
  Machine M(*Prog, &Dispatcher);
  ASSERT_TRUE(M.run().Ok);

  // leaf appears as two distinct contexts with distinct input sizes.
  const SymbolTable &Ctx = Adapter.contextSymbols();
  RoutineId Small = Ctx.lookup("main > viaSmall > leaf");
  RoutineId Big = Ctx.lookup("main > viaBig > leaf");
  ASSERT_NE(Small, ~0u);
  ASSERT_NE(Big, ~0u);
  auto Merged = Inner.database().mergedByRoutine();
  ASSERT_TRUE(Merged.count(Small));
  ASSERT_TRUE(Merged.count(Big));
  EXPECT_EQ(Merged.at(Small).activations(), 6u);
  EXPECT_EQ(Merged.at(Big).activations(), 6u);
  // The big-context leaf reads far more input than the small-context one.
  EXPECT_GT(Merged.at(Big).sumTrms(), Merged.at(Small).sumTrms() * 4);
}

TEST(ContextAdapter, PreservesAggregateTotals) {
  // Wrapping must only re-key activations, never change their number,
  // total cost, or total input.
  DiagnosticEngine Diags;
  auto Prog = compileProgram(ContextSource, Diags);
  ASSERT_TRUE(Prog.has_value());

  TrmsProfiler Plain;
  {
    EventDispatcher D;
    D.addTool(&Plain);
    Machine M(*Prog, &D);
    ASSERT_TRUE(M.run().Ok);
  }
  TrmsProfiler Inner;
  ContextAdapter Adapter(Inner);
  {
    EventDispatcher D;
    D.addTool(&Adapter);
    Machine M(*Prog, &D);
    ASSERT_TRUE(M.run().Ok);
  }

  EXPECT_EQ(Plain.database().totalActivations(),
            Inner.database().totalActivations());
  auto totals = [](const ProfileDatabase &Db) {
    uint64_t Cost = 0, Trms = 0, Rms = 0;
    for (const auto &[Key, Profile] : Db.threadRoutineProfiles()) {
      Cost += Profile.totalCost();
      Trms += Profile.sumTrms();
      Rms += Profile.sumRms();
    }
    return std::tuple(Cost, Trms, Rms);
  };
  EXPECT_EQ(totals(Plain.database()), totals(Inner.database()));
  // ...while the context view has strictly more profile keys.
  EXPECT_GT(Inner.database().mergedByRoutine().size(),
            Plain.database().mergedByRoutine().size());
}

TEST(ContextAdapter, RecursionProducesPerDepthContexts) {
  const char *Source = R"(
    fn down(n) {
      if (n == 0) { return 0; }
      return down(n - 1) + 1;
    }
    fn main() { return down(4); }
  )";
  DiagnosticEngine Diags;
  auto Prog = compileProgram(Source, Diags);
  ASSERT_TRUE(Prog.has_value());
  TrmsProfiler Inner;
  ContextAdapter Adapter(Inner);
  EventDispatcher D;
  D.addTool(&Adapter);
  Machine M(*Prog, &D);
  ASSERT_TRUE(M.run().Ok);
  // main, main>down, main>down>down, ..., 5 levels of down.
  EXPECT_EQ(Adapter.contextCount(), 6u);
  EXPECT_NE(Adapter.contextSymbols().lookup(
                "main > down > down > down > down > down"),
            ~0u);
}

} // namespace
