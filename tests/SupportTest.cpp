//===- tests/SupportTest.cpp - Support library unit tests ----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Csv.h"
#include "support/CurveFit.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace isp;

namespace {

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-9);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometricMean({1, 100}), 10.0, 1e-9);
  // Non-positive samples are skipped, SPEC-style.
  EXPECT_NEAR(geometricMean({0, 1, 100}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(geometricMean({0, -3}), 0.0);
}

TEST(Stats, MedianAndPercentile) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
}

TEST(Stats, Accumulator) {
  Accumulator Acc;
  EXPECT_DOUBLE_EQ(Acc.average(), 0.0);
  Acc.add(10);
  Acc.add(2);
  Acc.add(6);
  EXPECT_DOUBLE_EQ(Acc.Min, 2.0);
  EXPECT_DOUBLE_EQ(Acc.Max, 10.0);
  EXPECT_DOUBLE_EQ(Acc.average(), 6.0);
  EXPECT_EQ(Acc.Count, 3u);
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(Random, DeterministicAndSeedSensitive) {
  Rng A(42), B(42), C(7);
  bool Differs = false;
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    if (VA != C.next())
      Differs = true;
  }
  EXPECT_TRUE(Differs);
}

TEST(Random, BoundsRespected) {
  Rng R(1);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, RoughlyUniform) {
  Rng R(99);
  int Buckets[10] = {};
  constexpr int Samples = 100000;
  for (int I = 0; I != Samples; ++I)
    ++Buckets[R.nextBelow(10)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, Samples / 10 - Samples / 50);
    EXPECT_LT(Count, Samples / 10 + Samples / 50);
  }
}

//===----------------------------------------------------------------------===//
// CurveFit
//===----------------------------------------------------------------------===//

std::vector<FitPoint> makeSeries(double (*F)(double), double Lo, double Hi,
                                 double Step) {
  std::vector<FitPoint> Points;
  for (double N = Lo; N <= Hi; N += Step)
    Points.push_back({N, F(N)});
  return Points;
}

TEST(CurveFit, RecognizesLinear) {
  auto Points = makeSeries([](double N) { return 3 * N + 20; }, 8, 512, 16);
  FitResult Fit = fitCurve(Points);
  EXPECT_EQ(Fit.best().Model, GrowthModel::Linear);
  EXPECT_NEAR(Fit.best().Slope, 3.0, 0.01);
  EXPECT_NEAR(Fit.PowerLawAlpha, 1.0, 0.1);
}

TEST(CurveFit, RecognizesQuadratic) {
  auto Points = makeSeries([](double N) { return 0.5 * N * N + N; }, 8, 512,
                           16);
  FitResult Fit = fitCurve(Points);
  EXPECT_EQ(Fit.best().Model, GrowthModel::Quadratic);
  EXPECT_NEAR(Fit.PowerLawAlpha, 2.0, 0.15);
}

TEST(CurveFit, RecognizesNLogN) {
  auto Points = makeSeries(
      [](double N) { return 2 * N * std::log2(N) + 5; }, 16, 4096, 64);
  FitResult Fit = fitCurve(Points);
  EXPECT_EQ(Fit.best().Model, GrowthModel::NLogN);
}

TEST(CurveFit, RecognizesConstantAndLog) {
  auto Flat = makeSeries([](double N) { return 42.0; }, 4, 256, 8);
  EXPECT_EQ(fitCurve(Flat).best().Model, GrowthModel::Constant);
  auto Log = makeSeries([](double N) { return 7 * std::log2(N) + 3; }, 4,
                        65536, 997);
  EXPECT_EQ(fitCurve(Log).best().Model, GrowthModel::Log);
}

TEST(CurveFit, ParsimonyPrefersSlowerGrowth) {
  // Linear data with mild noise must not be labelled quadratic.
  std::vector<FitPoint> Points;
  for (double N = 10; N <= 500; N += 10)
    Points.push_back({N, 5 * N + (static_cast<int>(N) % 7) * 3.0});
  FitResult Fit = fitCurve(Points);
  EXPECT_EQ(Fit.best().Model, GrowthModel::Linear);
}

TEST(CurveFit, DegenerateInputs) {
  EXPECT_EQ(fitCurve({}).best().Model, GrowthModel::Constant);
  EXPECT_EQ(fitCurve({{5, 10}}).best().Model, GrowthModel::Constant);
  // Two identical N values: regression degenerates to the intercept.
  FitResult Fit = fitCurve({{5, 10}, {5, 20}});
  EXPECT_EQ(Fit.best().Model, GrowthModel::Constant);
}

//===----------------------------------------------------------------------===//
// Format / Table / Csv
//===----------------------------------------------------------------------===//

TEST(Format, Basics) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2500000), "2.5 MB");
  EXPECT_EQ(formatRatio(3.14), "3.1x");
}

TEST(Format, HumanizedCounts) {
  // Small counts stay exact; larger ones scale to engineering units.
  EXPECT_EQ(formatCount(0), "0");
  EXPECT_EQ(formatCount(972), "972");
  EXPECT_EQ(formatCount(54292), "54.3k");
  EXPECT_EQ(formatCount(1234567), "1.2M");
  EXPECT_EQ(formatCount(2500000000ull), "2.5G");
}

TEST(Format, HumanizedDurations) {
  EXPECT_EQ(formatDuration(0), "0 ns");
  EXPECT_EQ(formatDuration(999), "999 ns");
  EXPECT_EQ(formatDuration(12300), "12.3 us");
  EXPECT_EQ(formatDuration(4560000), "4.6 ms");
  EXPECT_EQ(formatDuration(2100000000ull), "2.1 s");
  // Durations never scale past seconds.
  EXPECT_EQ(formatDuration(7200000000000ull), "7200.0 s");
}

TEST(Table, AlignsColumns) {
  TextTable Table;
  Table.setHeader({"name", "value"});
  Table.addRow({"a", "1"});
  Table.addRow({"longer", "23456"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Numeric column is right-aligned: "1" lines up under the "value" end.
  EXPECT_NE(Out.find("    1"), std::string::npos);
}

TEST(Csv, EscapesSpecialCells) {
  CsvWriter Csv;
  Csv.addRow({"a", "b,c", "d\"e"});
  EXPECT_EQ(Csv.render(), "a,\"b,c\",\"d\"\"e\"\n");
}

//===----------------------------------------------------------------------===//
// CommandLine
//===----------------------------------------------------------------------===//

TEST(CommandLine, ParsesOptionsAndPositionals) {
  OptionParser Parser("test");
  Parser.addOption("size", "128", "problem size");
  Parser.addFlag("verbose", "more output");
  const char *Argv[] = {"prog", "--size=256", "--verbose", "input.txt"};
  ASSERT_TRUE(Parser.parse(4, Argv));
  EXPECT_EQ(Parser.getInt("size"), 256);
  EXPECT_TRUE(Parser.getFlag("verbose"));
  ASSERT_EQ(Parser.positional().size(), 1u);
  EXPECT_EQ(Parser.positional()[0], "input.txt");
}

TEST(CommandLine, SeparateValueForm) {
  OptionParser Parser("test");
  Parser.addOption("threads", "4", "thread count");
  const char *Argv[] = {"prog", "--threads", "8"};
  ASSERT_TRUE(Parser.parse(3, Argv));
  EXPECT_EQ(Parser.getInt("threads"), 8);
}

TEST(CommandLine, RejectsUnknownOption) {
  OptionParser Parser("test");
  const char *Argv[] = {"prog", "--nope"};
  EXPECT_FALSE(Parser.parse(2, Argv));
}

TEST(CommandLine, RejectsDuplicateOption) {
  // A repeated option used to silently overwrite the earlier value —
  // a reliable way to waste a benchmark run on the wrong parameters.
  OptionParser Parser("test");
  Parser.addOption("size", "128", "problem size");
  const char *Argv[] = {"prog", "--size=256", "--size=512"};
  EXPECT_FALSE(Parser.parse(3, Argv));
}

TEST(CommandLine, RejectsDuplicateFlag) {
  OptionParser Parser("test");
  Parser.addFlag("verbose", "more output");
  const char *Argv[] = {"prog", "--verbose", "--verbose"};
  EXPECT_FALSE(Parser.parse(3, Argv));
}

} // namespace

//===----------------------------------------------------------------------===//
// Gnuplot emission
//===----------------------------------------------------------------------===//

#include "support/Gnuplot.h"

#include <cstdio>
#include <fstream>

namespace {

TEST(Gnuplot, RendersDataAndScript) {
  GnuplotFigure Fig("test title", "n", "cost");
  Fig.addSeries({"by rms", {{1, 2}, {3, 4}}, "points pt 7"});
  Fig.addSeries({"by trms", {{1, 3}, {3, 9}}, "linespoints"});
  Fig.setLogScale(false, true);

  std::string Data = Fig.renderData();
  EXPECT_NE(Data.find("# series 0: by rms"), std::string::npos);
  EXPECT_NE(Data.find("3 9"), std::string::npos);

  std::string Script = Fig.renderScript("fig.dat", "fig.png");
  EXPECT_NE(Script.find("set logscale y"), std::string::npos);
  EXPECT_EQ(Script.find("set logscale x"), std::string::npos);
  EXPECT_NE(Script.find("index 1 with linespoints title 'by trms'"),
            std::string::npos);
  EXPECT_NE(Script.find("set output 'fig.png'"), std::string::npos);
}

TEST(Gnuplot, WritesFiles) {
  GnuplotFigure Fig("t", "x", "y");
  Fig.addSeries({"s", {{0, 0}, {1, 1}}, "points"});
  std::string Base = ::testing::TempDir() + "isprof_gnuplot_test";
  ASSERT_TRUE(Fig.write(Base));
  std::ifstream Gp(Base + ".gp");
  EXPECT_TRUE(Gp.good());
  std::ifstream Dat(Base + ".dat");
  EXPECT_TRUE(Dat.good());
  std::remove((Base + ".gp").c_str());
  std::remove((Base + ".dat").c_str());
}

} // namespace
