//===- tests/TraceTest.cpp - Trace model, merger, serialization ----------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "trace/Event.h"
#include "trace/Synthetic.h"
#include "trace/TraceFile.h"
#include "trace/TraceMerger.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <random>

using namespace isp;

namespace {

//===----------------------------------------------------------------------===//
// Merger (Section 4)
//===----------------------------------------------------------------------===//

TEST(TraceMerger, InterleavesByTimestamp) {
  std::vector<std::vector<EventRecord>> Traces(2);
  Traces[0] = {EventRecord::call(0, 1, 0), EventRecord::read(0, 5, 10),
               EventRecord::ret(0, 9, 0, 0)};
  Traces[1] = {EventRecord::call(1, 2, 1), EventRecord::write(1, 6, 10),
               EventRecord::ret(1, 7, 1, 0)};
  TraceMergeOptions Opts;
  Opts.InsertThreadSwitches = false;
  std::vector<EventRecord> Merged = mergeTraces(Traces, Opts);
  ASSERT_EQ(Merged.size(), 6u);
  for (size_t I = 1; I != Merged.size(); ++I)
    EXPECT_LE(Merged[I - 1].Time, Merged[I].Time);
  EXPECT_EQ(Merged[0].Time, 1u);
  EXPECT_EQ(Merged[5].Time, 9u);
}

TEST(TraceMerger, InsertsThreadSwitches) {
  std::vector<std::vector<EventRecord>> Traces(2);
  Traces[0] = {EventRecord::read(0, 1, 10), EventRecord::read(0, 3, 11)};
  Traces[1] = {EventRecord::read(1, 2, 20)};
  std::vector<EventRecord> Merged = mergeTraces(Traces);
  // r0, switch(1), r1, switch(0), r0.
  ASSERT_EQ(Merged.size(), 5u);
  EXPECT_EQ(Merged[1].Kind, EventKind::ThreadSwitch);
  EXPECT_EQ(Merged[1].Arg0, 1u);
  EXPECT_EQ(Merged[3].Kind, EventKind::ThreadSwitch);
  EXPECT_EQ(Merged[3].Arg0, 0u);
}

TEST(TraceMerger, TieBreakByThreadId) {
  std::vector<std::vector<EventRecord>> Traces(2);
  Traces[0] = {EventRecord::read(7, 5, 1)};
  Traces[1] = {EventRecord::read(3, 5, 2)};
  TraceMergeOptions Opts;
  Opts.InsertThreadSwitches = false;
  std::vector<EventRecord> Merged = mergeTraces(Traces, Opts);
  ASSERT_EQ(Merged.size(), 2u);
  EXPECT_EQ(Merged[0].Tid, 3u);
  EXPECT_EQ(Merged[1].Tid, 7u);
}

TEST(TraceMerger, SeededRandomTieBreakIsDeterministic) {
  std::vector<std::vector<EventRecord>> Traces(3);
  for (ThreadId T = 0; T != 3; ++T)
    for (uint64_t Time = 1; Time != 40; ++Time)
      Traces[T].push_back(EventRecord::read(T, Time, 100 + T));
  TraceMergeOptions Opts;
  Opts.Policy = TieBreakPolicy::SeededRandom;
  Opts.Seed = 99;
  std::vector<EventRecord> A = mergeTraces(Traces, Opts);
  std::vector<EventRecord> B = mergeTraces(Traces, Opts);
  EXPECT_EQ(A, B);
  Opts.Seed = 100;
  std::vector<EventRecord> C = mergeTraces(Traces, Opts);
  EXPECT_NE(A, C);
}

TEST(TraceMerger, PreservesPerThreadOrderUnderAnyPolicy) {
  SyntheticTraceOptions Gen;
  Gen.NumThreads = 4;
  Gen.NumOperations = 2000;
  Gen.Seed = 5;
  std::vector<EventRecord> Original = generateSyntheticTrace(Gen);
  auto PerThread = splitByThread(Original);
  for (TieBreakPolicy Policy :
       {TieBreakPolicy::ByThreadId, TieBreakPolicy::RoundRobin,
        TieBreakPolicy::SeededRandom}) {
    TraceMergeOptions Opts;
    Opts.Policy = Policy;
    std::vector<EventRecord> Merged = mergeTraces(PerThread, Opts);
    // Per-thread subsequences must match the originals exactly.
    std::map<ThreadId, size_t> Cursor;
    for (const EventRecord &E : Merged) {
      if (E.Kind == EventKind::ThreadSwitch)
        continue;
      size_t &Pos = Cursor[E.Tid];
      bool Found = false;
      for (const auto &Trace : PerThread) {
        if (!Trace.empty() && Trace.front().Tid == E.Tid) {
          ASSERT_LT(Pos, Trace.size());
          EXPECT_EQ(Trace[Pos], E);
          Found = true;
          break;
        }
      }
      EXPECT_TRUE(Found);
      ++Pos;
    }
  }
}

TEST(TraceMerger, SyntheticRoundTripsExactly) {
  // Synthetic traces have unique timestamps, so split + merge must
  // reproduce them exactly (modulo inserted switches).
  SyntheticTraceOptions Gen;
  Gen.NumThreads = 3;
  Gen.NumOperations = 3000;
  Gen.Seed = 11;
  std::vector<EventRecord> Original = generateSyntheticTrace(Gen);
  TraceMergeOptions Opts;
  Opts.InsertThreadSwitches = false;
  std::vector<EventRecord> Merged = mergeTraces(splitByThread(Original), Opts);
  EXPECT_EQ(Original, Merged);
}

TEST(TraceMerger, VerifyCatchesBadInput) {
  std::vector<std::vector<EventRecord>> Mixed(1);
  Mixed[0] = {EventRecord::read(0, 5, 1), EventRecord::read(1, 6, 1)};
  EXPECT_FALSE(verifyThreadTraces(Mixed));
  std::vector<std::vector<EventRecord>> Unsorted(1);
  Unsorted[0] = {EventRecord::read(0, 5, 1), EventRecord::read(0, 4, 1)};
  EXPECT_FALSE(verifyThreadTraces(Unsorted));
  std::vector<std::vector<EventRecord>> Good(1);
  Good[0] = {EventRecord::read(0, 4, 1), EventRecord::read(0, 4, 2)};
  EXPECT_TRUE(verifyThreadTraces(Good));
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(TraceFile, InMemoryRoundTrip) {
  TraceData Data;
  Data.Routines = {{0, "main"}, {1, "worker"}};
  SyntheticTraceOptions Gen;
  Gen.NumOperations = 500;
  Gen.Seed = 3;
  Data.Events = generateSyntheticTrace(Gen);

  std::string Bytes = serializeTrace(Data);
  TraceData Back;
  ASSERT_TRUE(deserializeTrace(Bytes, Back));
  EXPECT_EQ(Back.Routines, Data.Routines);
  EXPECT_EQ(Back.Events, Data.Events);
}

TEST(TraceFile, RejectsCorruptInput) {
  TraceData Data;
  Data.Events = {EventRecord::read(0, 1, 1)};
  std::string Bytes = serializeTrace(Data);

  TraceData Back;
  EXPECT_FALSE(deserializeTrace("not a trace", Back));
  EXPECT_FALSE(deserializeTrace(Bytes.substr(0, Bytes.size() - 3), Back));
  std::string BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_FALSE(deserializeTrace(BadMagic, Back));
  std::string BadKind = Bytes;
  BadKind[8 + 4 + 8] = 120; // event kind byte out of range
  EXPECT_FALSE(deserializeTrace(BadKind, Back));
}

TEST(TraceFile, FileRoundTrip) {
  TraceData Data;
  Data.Routines = {{0, "f"}};
  Data.Events = {EventRecord::call(0, 1, 0), EventRecord::ret(0, 2, 0, 0)};
  std::string Path = ::testing::TempDir() + "isprof_trace_test.bin";
  ASSERT_TRUE(writeTraceFile(Path, Data));
  TraceData Back;
  ASSERT_TRUE(readTraceFile(Path, Back));
  EXPECT_EQ(Back.Events, Data.Events);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Synthetic generator validity
//===----------------------------------------------------------------------===//

class SyntheticValidityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SyntheticValidityTest, TracesAreWellFormed) {
  SyntheticTraceOptions Gen;
  Gen.NumThreads = 1 + GetParam() % 7;
  Gen.NumOperations = 3000;
  Gen.Seed = GetParam();
  std::vector<EventRecord> Trace = generateSyntheticTrace(Gen);

  std::map<ThreadId, int> Depth;
  std::map<ThreadId, bool> Started, Ended;
  uint64_t LastTime = 0;
  for (const EventRecord &E : Trace) {
    EXPECT_GT(E.Time, LastTime) << "timestamps must be strictly increasing";
    LastTime = E.Time;
    switch (E.Kind) {
    case EventKind::ThreadStart:
      EXPECT_FALSE(Started[E.Tid]);
      Started[E.Tid] = true;
      break;
    case EventKind::ThreadEnd:
      EXPECT_EQ(Depth[E.Tid], 0) << "all calls must return before end";
      Ended[E.Tid] = true;
      break;
    case EventKind::Call:
      ++Depth[E.Tid];
      break;
    case EventKind::Return:
      --Depth[E.Tid];
      EXPECT_GE(Depth[E.Tid], 0);
      break;
    case EventKind::Read:
    case EventKind::Write:
    case EventKind::KernelRead:
    case EventKind::KernelWrite:
      EXPECT_TRUE(Started[E.Tid]);
      EXPECT_FALSE(Ended[E.Tid]);
      EXPECT_GT(Depth[E.Tid], 0) << "memory ops only inside activations";
      break;
    default:
      break;
    }
  }
  for (auto &[Tid, WasStarted] : Started)
    EXPECT_TRUE(Ended[Tid]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticValidityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 20, 40));

TEST(EventModel, KindNamesAreDistinct) {
  EXPECT_STREQ(eventKindName(EventKind::Call), "Call");
  EXPECT_STREQ(eventKindName(EventKind::KernelWrite), "KernelWrite");
  EXPECT_STREQ(eventKindName(EventKind::ThreadSwitch), "ThreadSwitch");
}

//===----------------------------------------------------------------------===//
// Packed 16-byte stream words
//===----------------------------------------------------------------------===//

static_assert(sizeof(Event) == 16, "packed stream word layout regressed");
static_assert(Event::MaxWordsPerRecord == 3,
              "a record is at most escape + main + follow-on");

TEST(PackedEvent, SingleCellAccessIsOneWord) {
  // The dominant events — single-cell accesses, fresh basic blocks with
  // inline tids and in-epoch times — must stay one 16-byte word.
  EventEncoder Enc;
  Event Words[Event::MaxWordsPerRecord];
  EXPECT_EQ(Enc.encode(EventRecord::read(7, 100, 0x1234), Words), 1u);
  EXPECT_EQ(Words[0].kind(), EventKind::Read);
  EXPECT_EQ(Words[0].inlineTid(), 7u);
  EXPECT_EQ(Words[0].TimeLow, 100u);
  EXPECT_EQ(Words[0].Arg, 0x1234u);
  EXPECT_FALSE(Words[0].hasFollow());
  EXPECT_EQ(Enc.encode(EventRecord::basicBlock(7, 101), Words), 1u);
  EXPECT_EQ(Words[0].Arg, 1u) << "block count rides in the main word";
}

TEST(PackedEvent, TimeEpochEscapeRoundTrip) {
  // Non-decreasing times that cross a 32-bit boundary decode through
  // the implicit wrap rule (no escape word); a discontinuous jump in
  // the high half forces an explicit escape word.
  uint64_t Wrap = uint64_t(1) << 32;
  std::vector<EventRecord> Records = {
      EventRecord::read(1, Wrap - 2, 10),  // needs escape: epoch 0 -> 0? no:
                                           // first event, hi=0 == inferred 0
      EventRecord::write(1, Wrap - 1, 11), // still epoch 0
      EventRecord::read(1, Wrap + 5, 12),  // low wrapped: implicit bump
      EventRecord::read(1, 3 * Wrap + 7, 13), // jump: explicit escape
      EventRecord::write(1, 3 * Wrap + 7, 14),
  };
  std::vector<Event> Words = encodeEventStream(Records);
  size_t Escapes = 0;
  for (const Event &W : Words)
    Escapes += W.isEscape() ? 1 : 0;
  EXPECT_EQ(Escapes, 1u) << "only the epoch jump needs an escape word";
  EXPECT_EQ(decodeEventStream(Words), Records);
  EXPECT_EQ(packedEventCount(Words), Records.size());
}

TEST(PackedEvent, FollowOnWordFuzz) {
  // Randomized round-trip over the encoder's three follow-on triggers:
  // non-default second argument, >24-bit thread id, and both at once.
  std::mt19937_64 Rng(0xfeedULL);
  std::vector<EventRecord> Records;
  uint64_t Time = 0;
  for (int I = 0; I != 5000; ++I) {
    EventRecord E;
    switch (Rng() % 5) {
    case 0:
      E = EventRecord::read(static_cast<ThreadId>(Rng() % (1u << 26)), Time,
                            Rng() % 1000000, 1 + Rng() % 64);
      break;
    case 1:
      E = EventRecord::write(static_cast<ThreadId>(Rng() % 16), Time,
                             Rng() % 1000000, 1); // default cells: one word
      break;
    case 2:
      E = EventRecord::basicBlock(static_cast<ThreadId>(Rng() % 16), Time,
                                  1 + Rng() % 100);
      break;
    case 3:
      E = EventRecord::ret(static_cast<ThreadId>(Rng() % (1u << 25)), Time,
                           static_cast<RoutineId>(Rng() % 100), Rng() % 5000);
      break;
    default:
      E = EventRecord::syncAcquire(static_cast<ThreadId>(Rng() % 16), Time,
                                   static_cast<SyncId>(Rng() % 8),
                                   (Rng() & 1) != 0);
      break;
    }
    Records.push_back(E);
    Time += Rng() % 3; // non-decreasing, with occasional ties
    if (I % 1000 == 999)
      Time += (uint64_t(1) << 32) / 2; // march toward epoch wraps
  }
  std::vector<Event> Words = encodeEventStream(Records);
  EXPECT_EQ(decodeEventStream(Words), Records);
  EXPECT_EQ(packedEventCount(Words), Records.size());
  // Big tids must spill the full id into the follow-on word.
  EventEncoder Enc;
  Event W[Event::MaxWordsPerRecord];
  EventRecord Big = EventRecord::read(Event::MaxInlineTid + 5, 1, 99);
  ASSERT_EQ(Enc.encode(Big, W), 2u);
  EXPECT_TRUE(W[0].hasFollow());
  EXPECT_EQ(W[1].TimeLow, Event::MaxInlineTid + 5);
  EventDecoder Dec;
  EventRecord Back;
  ASSERT_EQ(Dec.decode(W, 2, Back), 2u);
  EXPECT_EQ(Back, Big);
}

} // namespace

//===----------------------------------------------------------------------===//
// Compressed (v2) trace format
//===----------------------------------------------------------------------===//

namespace {

TraceData makeSampleTrace(uint64_t Operations, uint64_t Seed) {
  TraceData Data;
  Data.Routines = {{0, "main"}, {1, "worker"}, {2, "very_long_routine_name"}};
  SyntheticTraceOptions Gen;
  Gen.NumThreads = 4;
  Gen.NumOperations = Operations;
  Gen.Seed = Seed;
  Data.Events = generateSyntheticTrace(Gen);
  return Data;
}

TEST(TraceFileV2, RoundTripsExactly) {
  TraceData Data = makeSampleTrace(4000, 9);
  std::string Bytes = serializeTrace(Data, TraceFormat::Compressed);
  TraceData Back;
  ASSERT_TRUE(deserializeTrace(Bytes, Back));
  EXPECT_EQ(Back.Routines, Data.Routines);
  EXPECT_EQ(Back.Events, Data.Events);
}

TEST(TraceFileV2, SubstantiallySmallerThanRaw) {
  TraceData Data = makeSampleTrace(20000, 10);
  size_t Raw = serializeTrace(Data, TraceFormat::Raw).size();
  size_t Compressed =
      serializeTrace(Data, TraceFormat::Compressed).size();
  EXPECT_LT(Compressed * 3, Raw)
      << "raw " << Raw << " vs compressed " << Compressed;
}

TEST(TraceFileV2, RejectsCorruptInput) {
  TraceData Data = makeSampleTrace(100, 11);
  std::string Bytes = serializeTrace(Data, TraceFormat::Compressed);
  TraceData Back;
  EXPECT_FALSE(
      deserializeTrace(Bytes.substr(0, Bytes.size() - 2), Back));
  std::string Grown = Bytes + "x";
  EXPECT_FALSE(deserializeTrace(Grown, Back));
  std::string BadKind = Bytes;
  // Find the first event's kind byte and corrupt it. The header is
  // magic + varints, so corrupt a byte late in the stream instead and
  // accept either failure or a changed payload — the contract is "never
  // crash, never silently accept truncation".
  BadKind[BadKind.size() / 2] = static_cast<char>(0xff);
  TraceData Whatever;
  (void)deserializeTrace(BadKind, Whatever);
}

TEST(TraceFileV2, FileRoundTripDefaultsToCompressed) {
  TraceData Data = makeSampleTrace(500, 12);
  std::string Path = ::testing::TempDir() + "isprof_trace_v2.bin";
  ASSERT_TRUE(writeTraceFile(Path, Data)); // default: compressed
  TraceData Back;
  ASSERT_TRUE(readTraceFile(Path, Back));
  EXPECT_EQ(Back.Events, Data.Events);
  std::remove(Path.c_str());
}

TEST(TraceFileV2, BothFormatsInteroperate) {
  TraceData Data = makeSampleTrace(800, 13);
  for (TraceFormat Format : {TraceFormat::Raw, TraceFormat::Compressed}) {
    std::string Bytes = serializeTrace(Data, Format);
    TraceData Back;
    ASSERT_TRUE(deserializeTrace(Bytes, Back));
    EXPECT_EQ(Back.Events, Data.Events);
  }
}

//===----------------------------------------------------------------------===//
// Codec hardening: adversarial inputs must be rejected, never trusted
//===----------------------------------------------------------------------===//

/// Unsigned LEB128 append, mirroring the writer, for hand-building
/// hostile streams.
void appendVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

std::string v2Header() { return std::string("ISPTRC02", 8); }

/// A syntactically complete v2 event: kind 0 plus four varints.
void appendEvent(std::string &Out, uint64_t Tid, uint64_t TimeDelta,
                 uint64_t Arg0Zigzag, uint64_t Arg1) {
  Out.push_back(0); // smallest valid kind
  appendVarint(Out, Tid);
  appendVarint(Out, TimeDelta);
  appendVarint(Out, Arg0Zigzag);
  appendVarint(Out, Arg1);
}

TEST(TraceCodecHardening, RejectsOverlongVarint) {
  // Eleven continuation bytes: more than any uint64 can need.
  std::string Bytes = v2Header();
  for (int I = 0; I != 11; ++I)
    Bytes.push_back(static_cast<char>(0x81));
  Bytes.push_back(0x00);
  TraceData Back;
  EXPECT_FALSE(deserializeTrace(Bytes, Back));

  // Ten bytes, but the tenth carries a payload bit past bit 63 — the
  // classic overlong encoding that used to wrap silently.
  std::string Wrap = v2Header();
  for (int I = 0; I != 9; ++I)
    Wrap.push_back(static_cast<char>(0x80));
  Wrap.push_back(0x02); // bit 64
  EXPECT_FALSE(deserializeTrace(Wrap, Back));

  // A continuation bit on the tenth byte is just as overlong.
  std::string Cont = v2Header();
  for (int I = 0; I != 10; ++I)
    Cont.push_back(static_cast<char>(0x80));
  Cont.push_back(0x00);
  EXPECT_FALSE(deserializeTrace(Cont, Back));
}

TEST(TraceCodecHardening, AcceptsMaximalTenByteVarint) {
  // UINT64_MAX encodes as nine 0xff bytes plus 0x01 — legal, and must
  // keep working after the overlong rejection. Exercised through a real
  // event: TimeDelta = UINT64_MAX.
  std::string Bytes = v2Header();
  appendVarint(Bytes, 0); // routines
  appendVarint(Bytes, 1); // events
  Bytes.push_back(0);
  appendVarint(Bytes, 7); // tid
  for (int I = 0; I != 9; ++I)
    Bytes.push_back(static_cast<char>(0xff));
  Bytes.push_back(0x01);  // time delta = UINT64_MAX
  appendVarint(Bytes, 0); // arg0 zigzag
  appendVarint(Bytes, 0); // arg1
  TraceData Back;
  ASSERT_TRUE(deserializeTrace(Bytes, Back));
  ASSERT_EQ(Back.Events.size(), 1u);
  EXPECT_EQ(Back.Events[0].Time, UINT64_MAX);
  EXPECT_EQ(Back.Events[0].Tid, 7u);
}

TEST(TraceCodecHardening, RejectsOversizedThreadId) {
  // ThreadId is 32-bit; a Tid of 2^32 must fail loudly instead of
  // truncating to 0.
  std::string Bytes = v2Header();
  appendVarint(Bytes, 0); // routines
  appendVarint(Bytes, 1); // events
  appendEvent(Bytes, uint64_t(1) << 32, 1, 0, 0);
  TraceData Back;
  EXPECT_FALSE(deserializeTrace(Bytes, Back));

  // The largest representable Tid stays accepted.
  std::string Ok = v2Header();
  appendVarint(Ok, 0);
  appendVarint(Ok, 1);
  appendEvent(Ok, UINT32_MAX, 1, 0, 0);
  ASSERT_TRUE(deserializeTrace(Ok, Back));
  ASSERT_EQ(Back.Events.size(), 1u);
  EXPECT_EQ(Back.Events[0].Tid, UINT32_MAX);
}

TEST(TraceCodecHardening, RejectsOversizedRoutineId) {
  std::string Bytes = v2Header();
  appendVarint(Bytes, 1);                 // one routine
  appendVarint(Bytes, uint64_t(1) << 33); // id > UINT32_MAX
  appendVarint(Bytes, 1);                 // name length
  Bytes.push_back('f');
  appendVarint(Bytes, 0); // events
  TraceData Back;
  EXPECT_FALSE(deserializeTrace(Bytes, Back));
}

TEST(TraceCodecHardening, RejectsHugeEventCountWithoutAllocating) {
  // An EventCount of 2^60 over a few payload bytes must be rejected
  // before Events.reserve() tries to honour it. (If the clamp were
  // missing this test would OOM, not just fail.)
  std::string V2 = v2Header();
  appendVarint(V2, 0);              // routines
  appendVarint(V2, uint64_t(1) << 60);
  appendEvent(V2, 0, 1, 0, 0);      // one real event, not 2^60
  TraceData Back;
  EXPECT_FALSE(deserializeTrace(V2, Back));

  std::string Raw("ISPTRC01", 8);
  for (int I = 0; I != 4; ++I)
    Raw.push_back(0); // routine count u32 = 0
  uint64_t Count = uint64_t(1) << 60;
  for (int I = 0; I != 8; ++I)
    Raw.push_back(static_cast<char>((Count >> (8 * I)) & 0xff));
  Raw.append(29, '\0'); // one event's worth of payload
  EXPECT_FALSE(deserializeTrace(Raw, Back));
}

TEST(TraceCodecHardening, RejectsHugeRoutineCountAndLength) {
  std::string V2 = v2Header();
  appendVarint(V2, uint64_t(1) << 50); // routine count nothing can back
  TraceData Back;
  EXPECT_FALSE(deserializeTrace(V2, Back));

  // Raw format: a routine whose claimed name length exceeds the file.
  std::string Raw("ISPTRC01", 8);
  Raw.push_back(1);
  Raw.append(3, '\0'); // routine count u32 = 1
  Raw.append(4, '\0'); // id = 0
  Raw.append(4, static_cast<char>(0xff)); // length = UINT32_MAX
  Raw.append("abc", 3);
  EXPECT_FALSE(deserializeTrace(Raw, Back));
}

TEST(TraceCodecHardening, TruncationFuzzNeverCrashes) {
  TraceData Data = makeSampleTrace(300, 21);
  for (TraceFormat Format : {TraceFormat::Raw, TraceFormat::Compressed}) {
    std::string Bytes = serializeTrace(Data, Format);
    for (size_t Len = 0; Len < Bytes.size(); Len += 7) {
      TraceData Back;
      // Every proper prefix is missing bytes the header promises.
      EXPECT_FALSE(deserializeTrace(Bytes.substr(0, Len), Back))
          << "prefix of length " << Len << " accepted";
    }
  }
}

TEST(TraceCodecHardening, BitFlipFuzzNeverCrashes) {
  TraceData Data = makeSampleTrace(200, 22);
  for (TraceFormat Format : {TraceFormat::Raw, TraceFormat::Compressed}) {
    std::string Bytes = serializeTrace(Data, Format);
    for (size_t Pos = 0; Pos < Bytes.size(); Pos += 3) {
      for (int Bit : {0, 3, 7}) {
        std::string Mutated = Bytes;
        Mutated[Pos] = static_cast<char>(Mutated[Pos] ^ (1 << Bit));
        TraceData Back;
        // Acceptance is fine when the flip lands in a payload byte; the
        // contract is no crash, no unbounded allocation.
        (void)deserializeTrace(Mutated, Back);
      }
    }
  }
}

TEST(TraceCodecHardening, ExtremeFieldValuesRoundTrip) {
  TraceData Data;
  Data.Routines = {{UINT32_MAX, "edge"}};
  EventRecord E;
  E.Kind = EventKind::Write;
  E.Tid = UINT32_MAX;
  E.Time = UINT64_MAX - 1;
  E.Arg0 = UINT64_MAX;
  E.Arg1 = UINT64_MAX;
  EventRecord E2 = E;
  E2.Kind = EventKind::Read;
  E2.Time = UINT64_MAX;
  E2.Arg0 = 0; // forces a maximal negative zigzag delta
  Data.Events = {E, E2};
  for (TraceFormat Format : {TraceFormat::Raw, TraceFormat::Compressed}) {
    std::string Bytes = serializeTrace(Data, Format);
    TraceData Back;
    ASSERT_TRUE(deserializeTrace(Bytes, Back));
    EXPECT_EQ(Back.Routines, Data.Routines);
    EXPECT_EQ(Back.Events, Data.Events);
  }
}

} // namespace
