//===- tests/VmDispatchTest.cpp - Dispatch-mode / block-compile identity ---===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The interpreter's contract across its execution strategies: the switch
// loop, the computed-goto threaded loop, and the block-compiled fast
// path must produce byte-identical packed event streams, identical
// guest output, and identical run statistics (modulo the CompiledBlock*
// engagement counters). These are the property tests the hot-path
// refactor is gated on — a divergence anywhere in event content,
// compaction, *or flush timing* shows up as a word-level mismatch here.
//
//===----------------------------------------------------------------------===//

#include "instr/Dispatcher.h"
#include "vm/Compiler.h"
#include "vm/Diag.h"
#include "vm/Machine.h"
#include "vm/Optimizer.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

struct RunCapture {
  std::vector<Event> Words;
  RunResult Result;
};

RunCapture runWith(const Program &Prog, MachineOptions Opts,
                   size_t BatchCapacity = 0) {
  RunCapture Out;
  EventDispatcher Dispatcher;
  if (BatchCapacity != 0)
    Dispatcher.setBatchCapacity(BatchCapacity);
  Dispatcher.enableRecording();
  Machine M(Prog, &Dispatcher, Opts);
  Out.Result = M.run();
  Out.Words = Dispatcher.recordedEvents();
  return Out;
}

/// Equality over everything a guest run observes — including failure
/// diagnostics — with the block-compile engagement counters (which
/// legitimately differ) masked out.
void expectEquivalent(const RunCapture &A, const RunCapture &B,
                      const char *What) {
  EXPECT_EQ(A.Result.Ok, B.Result.Ok) << What;
  EXPECT_EQ(A.Result.ExitCode, B.Result.ExitCode) << What;
  EXPECT_EQ(A.Result.Error, B.Result.Error) << What;
  EXPECT_EQ(A.Result.Output, B.Result.Output) << What;
  RunStats SA = A.Result.Stats, SB = B.Result.Stats;
  SA.CompiledBlockRuns = SB.CompiledBlockRuns = 0;
  SA.CompiledBlockInstrs = SB.CompiledBlockInstrs = 0;
  EXPECT_EQ(SA.Instructions, SB.Instructions) << What;
  EXPECT_EQ(SA.BasicBlocks, SB.BasicBlocks) << What;
  EXPECT_EQ(SA.MemReads, SB.MemReads) << What;
  EXPECT_EQ(SA.MemWrites, SB.MemWrites) << What;
  EXPECT_EQ(SA.GuestMemoryBytes, SB.GuestMemoryBytes) << What;
  EXPECT_EQ(SA.QuietEventsSuppressed, SB.QuietEventsSuppressed) << What;
  EXPECT_EQ(SA.QuietIndirectSuppressed, SB.QuietIndirectSuppressed) << What;
  EXPECT_EQ(SA.QuietWindowAborts, SB.QuietWindowAborts) << What;
  ASSERT_EQ(A.Words.size(), B.Words.size()) << What;
  for (size_t I = 0; I != A.Words.size(); ++I)
    ASSERT_TRUE(A.Words[I] == B.Words[I])
        << What << ": packed word " << I << " differs";
}

/// Runs \p Source under all four strategy combinations and checks the
/// full pairwise identity. Returns the block-compiled capture so tests
/// can also assert engagement. With \p ExpectOk false the guest is
/// expected to fail, identically, in every mode.
RunCapture checkAllModes(const std::string &Source, bool Optimize = false,
                         uint64_t SliceLength = 150,
                         size_t BatchCapacity = 0, bool ExpectOk = true) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render();
  if (!Prog)
    return {};
  if (Optimize)
    optimizeProgram(*Prog);

  MachineOptions Base;
  Base.SliceLength = SliceLength;
  struct Config {
    const char *Name;
    DispatchMode Dispatch;
    bool BlockCompile;
  };
  const Config Configs[] = {
      {"switch", DispatchMode::Switch, false},
      {"threaded", DispatchMode::Threaded, false},
      {"switch+block", DispatchMode::Switch, true},
      {"threaded+block", DispatchMode::Threaded, true},
  };
  RunCapture Reference;
  RunCapture BlockCompiled;
  for (const Config &C : Configs) {
    MachineOptions Opts = Base;
    Opts.Dispatch = C.Dispatch;
    Opts.BlockCompile = C.BlockCompile;
    RunCapture Capture = runWith(*Prog, Opts, BatchCapacity);
    EXPECT_EQ(Capture.Result.Ok, ExpectOk)
        << C.Name << ": " << Capture.Result.Error;
    if (C.BlockCompile)
      BlockCompiled = Capture;
    if (&C == &Configs[0]) {
      Reference = std::move(Capture);
      continue;
    }
    expectEquivalent(Reference, Capture, C.Name);
  }
  return BlockCompiled;
}

const char *StraightLineHeavySource = R"(
  var total;
  var bias;
  fn step(a, b) {
    var x = a * 3 + b;
    var y = x - a;
    var z = x * y + bias;
    total = total + z;
    return z;
  }
  fn main() {
    bias = 7;
    var i = 0;
    var acc = 0;
    while (i < 200) {
      acc = acc + step(i, acc);
      i = i + 1;
    }
    return acc % 255;
  })";

TEST(DispatchEquivalence, StraightLineHeavyGuest) {
  RunCapture Block = checkAllModes(StraightLineHeavySource);
  EXPECT_GT(Block.Result.Stats.CompiledBlockRuns, 0u)
      << "guest has straight-line runs; the block compiler must engage";
  EXPECT_GT(Block.Result.Stats.CompiledBlockInstrs,
            Block.Result.Stats.CompiledBlockRuns)
      << "templated runs cover more than their BasicBlock markers";
}

TEST(DispatchEquivalence, QuietMarkedGuest) {
  // The optimizer's quiet marks exercise the statically-suppressed
  // template path (no event word, no time tick) and its
  // WindowInterrupted runtime gate.
  RunCapture Block = checkAllModes(StraightLineHeavySource, /*Optimize=*/true);
  EXPECT_GT(Block.Result.Stats.QuietEventsSuppressed, 0u)
      << "optimizer marks must fire under block compilation too";
}

TEST(DispatchEquivalence, MultiThreadedGuestAcrossSliceLengths) {
  const char *Source = R"(
    var shared[8];
    var gate;
    fn worker(id, rounds) {
      var i = 0;
      var acc = 0;
      while (i < rounds) {
        var v = shared[id] + i;
        shared[id] = v;
        acc = acc + v * 2 - id;
        i = i + 1;
      }
      return acc;
    }
    fn main() {
      gate = lock_create();
      var a = spawn worker(1, 40);
      var b = spawn worker(2, 55);
      var own = worker(0, 30);
      return (own + join(a) + join(b)) % 1023;
    })";
  // Short slices maximize thread switches (WindowInterrupted churn and
  // mid-window budget exhaustion); the default exercises long runs.
  checkAllModes(Source, /*Optimize=*/true, /*SliceLength=*/7);
  checkAllModes(Source, /*Optimize=*/true, /*SliceLength=*/150);
}

TEST(DispatchEquivalence, TinyBatchCapacityKeepsFlushTimingExact) {
  // With a 16-word batch, templated runs frequently do not fit the
  // pending batch; the fast path must fall back rather than flush
  // early, keeping batch boundaries — and the recorded words — exact.
  checkAllModes(StraightLineHeavySource, /*Optimize=*/false,
                /*SliceLength=*/150, /*BatchCapacity=*/16);
}

TEST(DispatchEquivalence, IndirectAndBuiltinGuest) {
  // Indirect accesses ride inside hybrid runs (their events enqueued at
  // the segment seams); allocas, kernel I/O, and builtins remain
  // block-ineligible, so templates must end cleanly at each and the
  // slow path must resume with identical dispatcher state.
  const char *Source = R"(
    var buf[16];
    fn fill(n) {
      var i = 0;
      while (i < n) {
        buf[i] = i * i;
        i = i + 1;
      }
      return i;
    }
    fn main() {
      sysread(1, buf, 8);
      var n = fill(12);
      var p = alloc(6);
      store(p + 1, 42);
      var v = load(p + 1);
      syswrite(2, buf, 4);
      return n + v + buf[3];
    })";
  RunCapture Block = checkAllModes(Source, /*Optimize=*/true);
  EXPECT_GT(Block.Result.Stats.CompiledBlockRuns, 0u)
      << "hybrid runs must engage on the indirect-heavy fill loop";
}

TEST(DispatchEquivalence, DivideByZeroMidRunFailsIdentically) {
  // The divisor reaches zero on the fourth iteration, inside a compiled
  // run: stop-before-failure must reproduce the slow path's diagnostic,
  // prefix events, and prefix stats exactly.
  const char *Source = R"(
    fn main() {
      var i = 0;
      var acc = 7;
      while (i < 10) {
        acc = acc + 100 / (3 - i);
        i = i + 1;
      }
      return acc;
    })";
  RunCapture Block =
      checkAllModes(Source, /*Optimize=*/false, /*SliceLength=*/150,
                    /*BatchCapacity=*/0, /*ExpectOk=*/false);
  EXPECT_GT(Block.Result.Stats.CompiledBlockRuns, 0u)
      << "the failing run must have engaged the fast path";
}

TEST(DispatchEquivalence, InvalidIndirectAddressMidRunFailsIdentically) {
  // The second iteration indexes far outside the globals region: the
  // hybrid run's LoadIndirect fails after one successful iteration and
  // one successful in-run dynamic event.
  const char *Source = R"(
    var buf[4];
    fn main() {
      var i = 0;
      var acc = 0;
      while (i < 100) {
        acc = acc + buf[i * 50];
        i = i + 1;
      }
      return acc;
    })";
  RunCapture Block =
      checkAllModes(Source, /*Optimize=*/false, /*SliceLength=*/150,
                    /*BatchCapacity=*/0, /*ExpectOk=*/false);
  EXPECT_GT(Block.Result.Stats.CompiledBlockRuns, 0u)
      << "the failing run must have engaged the fast path";
}

TEST(DispatchEquivalence, ThreadedIsDefaultWhenAvailable) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram("fn main() { return 3; }",
                                               Diags);
  ASSERT_TRUE(Prog.has_value());
  MachineOptions Auto; // DispatchMode::Auto picks threaded when built in.
  RunCapture A = runWith(*Prog, Auto);
  EXPECT_TRUE(A.Result.Ok);
  EXPECT_EQ(A.Result.ExitCode, 3);
}

/// Structural invariants every plan must satisfy: the compaction
/// identity (with dynamic events self-counting), the segment partition
/// of the word array, per-segment tick accounting, and the opcode
/// whitelist over the covered range.
void expectPlanInvariants(const Function &Fn, const BlockPlan &P) {
  EXPECT_EQ(Fn.Code[P.BeginPc].Opcode, Op::BasicBlock);
  EXPECT_GE(P.instrCount(), 2u);
  EXPECT_EQ(P.EnqueueCount, uint64_t(P.NumRecords + P.InternalMerges +
                                     P.InternalBbFolds + P.NumDynEvents))
      << "records + merges + folds + dynamic events must reassemble the "
         "uncompacted count";
  EXPECT_EQ(P.InternalBbFolds, P.NumBlocks - 1);
  ASSERT_FALSE(P.Words.empty());
  EXPECT_EQ(P.Words.front().Word.kind(), EventKind::BasicBlock);
  EXPECT_EQ(P.Words.front().TimeOff, 1u);
  EXPECT_EQ(P.Words.front().Word.Arg, uint64_t(P.NumBlocks))
      << "interior markers fold into the leading block count";

  // Segments partition Words in run order, one per dynamic event plus
  // one; each segment's tick count is its own record/merge/fold total,
  // and its LastMainOff names its final main word.
  ASSERT_EQ(P.Segments.size(), size_t(P.NumDynEvents) + 1);
  uint32_t WordCursor = 0;
  uint64_t Records = 0, Merges = 0, Folds = 0, Ticks = 0;
  for (const BlockPlan::Segment &S : P.Segments) {
    EXPECT_EQ(S.WordBegin, WordCursor);
    EXPECT_LE(S.WordBegin, S.WordEnd);
    WordCursor = S.WordEnd;
    EXPECT_EQ(S.Ticks, S.NumRecords + S.InternalMerges + S.InternalBbFolds);
    Records += S.NumRecords;
    Merges += S.InternalMerges;
    Folds += S.InternalBbFolds;
    Ticks += S.Ticks;
    uint32_t LastMain = 0, MainWords = 0;
    for (uint32_t W = S.WordBegin; W != S.WordEnd; ++W)
      if (P.Words[W].MainMask != 0) {
        LastMain = P.Words[W].TimeOff;
        ++MainWords;
      }
    EXPECT_EQ(MainWords, S.NumRecords) << "one main word per record";
    if (S.NumRecords != 0)
      EXPECT_EQ(S.LastMainOff, LastMain);
  }
  EXPECT_EQ(WordCursor, P.Words.size());
  EXPECT_EQ(Records, P.NumRecords);
  EXPECT_EQ(Merges, P.InternalMerges);
  EXPECT_EQ(Folds, P.InternalBbFolds);
  EXPECT_EQ(Ticks + P.NumDynEvents, P.EnqueueCount);

  for (const TemplateWord &W : P.Words) {
    EXPECT_EQ(W.Word.inlineTid(), 0u) << "tid patched at runtime";
    EXPECT_EQ(W.Word.TimeLow, 0u) << "time patched at runtime";
    EXPECT_FALSE(W.Word.isEscape()) << "templates cannot hold escapes";
    if (W.MainMask == 0) {
      EXPECT_EQ(W.FrameMask, 0u) << "follow-ons take no frame base";
      EXPECT_EQ(W.TimeOff, 0u) << "follow-ons take no time";
    }
  }
  // Covered instructions are all whitelisted and in range; interior
  // BasicBlock markers are allowed (folded statically) and the dynamic
  // instructions ride inside hybrid runs, but terminators, calls, and
  // the remaining fallible op (AllocaArray) never appear.
  uint32_t Markers = 1, DynAccesses = 0;
  for (uint32_t Pc = P.BeginPc + 1; Pc != P.EndPc; ++Pc) {
    const Instr &I = Fn.Code[Pc];
    if (I.Opcode == Op::BasicBlock) {
      ++Markers;
      continue;
    }
    if ((I.Opcode == Op::LoadIndirect || I.Opcode == Op::StoreIndirect) &&
        I.B == 0)
      ++DynAccesses;
    EXPECT_TRUE(I.Opcode != Op::Call && I.Opcode != Op::Return &&
                I.Opcode != Op::Jump && I.Opcode != Op::JumpIfFalse &&
                I.Opcode != Op::JumpIfTrue && I.Opcode != Op::CallBuiltin &&
                I.Opcode != Op::Spawn && I.Opcode != Op::AllocaArray);
  }
  EXPECT_EQ(Markers, P.NumBlocks);
  EXPECT_EQ(DynAccesses, P.NumDynEvents)
      << "each unmarked dynamic access is one runtime-enqueued event";
}

TEST(BlockCompiler, PlansCoverStraightLineRunsOnly) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(StraightLineHeavySource, Diags);
  ASSERT_TRUE(Prog.has_value());
  const Function *Step = Prog->findFunction("step");
  ASSERT_NE(Step, nullptr);
  FunctionBlockPlans Plans = compileFunctionBlocks(*Step, Prog->GlobalCells);
  ASSERT_FALSE(Plans.Plans.empty()) << "step() is one straight-line block";
  for (const BlockPlan &P : Plans.Plans) {
    expectPlanInvariants(*Step, P);
    EXPECT_EQ(P.NumDynEvents, 0u) << "step() is purely static";
    EXPECT_EQ(P.Segments.size(), 1u);
  }
}

TEST(BlockCompiler, HybridPlansSegmentAtDynamicAccesses) {
  const char *Source = R"(
    var data[32];
    fn kernel(i) {
      var a = data[i];
      var b = data[i + 1];
      data[i] = a + b / 3;
      return a * b;
    }
    fn main() { return kernel(4); })";
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  const Function *Kernel = Prog->findFunction("kernel");
  ASSERT_NE(Kernel, nullptr);
  FunctionBlockPlans Plans =
      compileFunctionBlocks(*Kernel, Prog->GlobalCells);
  ASSERT_FALSE(Plans.Plans.empty())
      << "indirect accesses and division must not break the cover";
  bool SawHybrid = false;
  for (const BlockPlan &P : Plans.Plans) {
    expectPlanInvariants(*Kernel, P);
    if (P.NumDynEvents >= 3)
      SawHybrid = true; // two loads and a store in one run
  }
  EXPECT_TRUE(SawHybrid)
      << "kernel() body must compile to one hybrid run with >= 3 segments";
}

} // namespace
