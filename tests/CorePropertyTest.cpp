//===- tests/CorePropertyTest.cpp - Property-based profiler tests --------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Property-based validation of the read/write timestamping algorithm on
// randomly generated (but structurally valid) multithreaded traces:
//
//  P1. Equivalence with the Figure 10 naive set-based oracle: identical
//      ActivationRecords — same rms, trms, cost, and induced splits —
//      for every activation of every trace.
//  P2. Renumbering transparency: a tiny counter limit (forcing frequent
//      Figure 13 passes) changes nothing.
//  P3. Shadow-memory transparency: the dense hash shadow and the
//      three-level shadow give identical results.
//  P4. Inequality 1: trms >= rms for every activation.
//  P5. Determinism: running twice gives identical databases.
//
//===----------------------------------------------------------------------===//

#include "core/NaiveProfiler.h"
#include "core/TrmsProfiler.h"
#include "trace/Synthetic.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

struct TraceShape {
  unsigned Threads;
  unsigned Routines;
  unsigned SharedAddresses;
  unsigned PrivateAddresses;
  uint64_t Operations;
  double KernelProbability;
};

class TrmsPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {
protected:
  std::vector<EventRecord> makeTrace() const {
    static const TraceShape Shapes[] = {
        {1, 4, 32, 16, 4000, 0.02},  // single-threaded, kernel I/O
        {2, 6, 16, 8, 6000, 0.00},   // two threads, no kernel
        {4, 8, 48, 24, 8000, 0.03},  // the default mix
        {8, 12, 24, 4, 9000, 0.05},  // many threads, hot shared pool
        {3, 5, 4, 2, 5000, 0.10},    // tiny address space, heavy reuse
    };
    SyntheticTraceOptions Opts;
    const TraceShape &Shape =
        Shapes[static_cast<size_t>(std::get<1>(GetParam()))];
    Opts.NumThreads = Shape.Threads;
    Opts.NumRoutines = Shape.Routines;
    Opts.SharedAddresses = Shape.SharedAddresses;
    Opts.PrivateAddresses = Shape.PrivateAddresses;
    Opts.NumOperations = Shape.Operations;
    Opts.KernelReadProbability = Shape.KernelProbability;
    Opts.KernelWriteProbability = Shape.KernelProbability;
    Opts.Seed = std::get<0>(GetParam());
    return generateSyntheticTrace(Opts);
  }
};

TEST_P(TrmsPropertyTest, MatchesNaiveOracle) {
  std::vector<EventRecord> Trace = makeTrace();

  TrmsProfilerOptions FastOpts;
  ProfileDatabase Fast = profileTrace<TrmsProfiler>(Trace, FastOpts);
  NaiveProfilerOptions NaiveOpts;
  ProfileDatabase Naive =
      profileTrace<NaiveTrmsProfiler>(Trace, NaiveOpts);

  ASSERT_EQ(Fast.log().size(), Naive.log().size());
  for (size_t I = 0; I != Fast.log().size(); ++I)
    ASSERT_EQ(Fast.log()[I], Naive.log()[I]) << "activation " << I;

  EXPECT_EQ(Fast.GlobalInducedThread, Naive.GlobalInducedThread);
  EXPECT_EQ(Fast.GlobalInducedExternal, Naive.GlobalInducedExternal);
  EXPECT_EQ(Fast.GlobalPlainFirstAccesses, Naive.GlobalPlainFirstAccesses);
  EXPECT_EQ(Fast.GlobalReads, Naive.GlobalReads);
}

TEST_P(TrmsPropertyTest, RenumberingIsTransparent) {
  std::vector<EventRecord> Trace = makeTrace();

  TrmsProfilerOptions BigOpts;
  TrmsProfilerOptions TinyOpts;
  TinyOpts.CounterLimit = 256;
  TinyOpts.KeepActivationLog = true;
  BigOpts.KeepActivationLog = true;

  TrmsProfiler Big(BigOpts), Tiny(TinyOpts);
  replayTrace(Trace, Big);
  replayTrace(Trace, Tiny);

  EXPECT_GT(Tiny.renumberings(), 0u);
  ASSERT_EQ(Big.database().log().size(), Tiny.database().log().size());
  for (size_t I = 0; I != Big.database().log().size(); ++I)
    ASSERT_EQ(Big.database().log()[I], Tiny.database().log()[I])
        << "activation " << I;
  EXPECT_EQ(Big.database().GlobalInducedThread,
            Tiny.database().GlobalInducedThread);
  EXPECT_EQ(Big.database().GlobalInducedExternal,
            Tiny.database().GlobalInducedExternal);
}

TEST_P(TrmsPropertyTest, ShadowChoiceIsTransparent) {
  std::vector<EventRecord> Trace = makeTrace();
  TrmsProfilerOptions Opts;
  ProfileDatabase ThreeLevel = profileTrace<TrmsProfiler>(Trace, Opts);
  ProfileDatabase Dense = profileTrace<DenseTrmsProfiler>(Trace, Opts);
  ASSERT_EQ(ThreeLevel.log().size(), Dense.log().size());
  for (size_t I = 0; I != ThreeLevel.log().size(); ++I)
    ASSERT_EQ(ThreeLevel.log()[I], Dense.log()[I]) << "activation " << I;
}

TEST_P(TrmsPropertyTest, ShardedWtsIsTransparent) {
  // P3 extended to the range-sharded wts shadow: profiles are identical
  // at every shard count, including under a tiny counter limit that
  // forces renumbering sweeps through the per-shard epoch path.
  std::vector<EventRecord> Trace = makeTrace();
  TrmsProfilerOptions Opts;
  ProfileDatabase Global = profileTrace<TrmsProfiler>(Trace, Opts);
  for (unsigned Shards : {1u, 4u, 16u}) {
    TrmsProfilerOptions ShardOpts;
    ShardOpts.ShadowShards = Shards;
    ShardOpts.CounterLimit = 512; // force frequent renumbering
    ProfileDatabase Sharded =
        profileTrace<ShardedTrmsProfiler>(Trace, ShardOpts);
    ASSERT_EQ(Global.log().size(), Sharded.log().size());
    for (size_t I = 0; I != Global.log().size(); ++I)
      ASSERT_EQ(Global.log()[I], Sharded.log()[I])
          << "activation " << I << " at " << Shards << " shards";
    EXPECT_EQ(Global.GlobalInducedThread, Sharded.GlobalInducedThread);
    EXPECT_EQ(Global.GlobalInducedExternal, Sharded.GlobalInducedExternal);
  }
}

TEST_P(TrmsPropertyTest, TrmsAlwaysAtLeastRms) {
  std::vector<EventRecord> Trace = makeTrace();
  TrmsProfilerOptions Opts;
  ProfileDatabase Db = profileTrace<TrmsProfiler>(Trace, Opts);
  ASSERT_FALSE(Db.log().empty());
  for (const ActivationRecord &R : Db.log()) {
    EXPECT_GE(R.Trms, R.Rms);
    EXPECT_GE(R.Trms, R.InducedThread + R.InducedExternal);
  }
}

TEST_P(TrmsPropertyTest, Deterministic) {
  std::vector<EventRecord> Trace = makeTrace();
  TrmsProfilerOptions Opts;
  ProfileDatabase First = profileTrace<TrmsProfiler>(Trace, Opts);
  ProfileDatabase Second = profileTrace<TrmsProfiler>(Trace, Opts);
  ASSERT_EQ(First.log().size(), Second.log().size());
  for (size_t I = 0; I != First.log().size(); ++I)
    ASSERT_EQ(First.log()[I], Second.log()[I]);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraces, TrmsPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 5, 8, 13, 21,
                                                   34, 55, 89),
                       ::testing::Values(0, 1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, int>> &Info) {
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_shape" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
