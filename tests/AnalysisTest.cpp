//===- tests/AnalysisTest.cpp - Static analysis layer tests --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for src/analysis: CFG construction, the generic dataflow
// solver (forward and backward), the bytecode verifier on valid and
// adversarial programs, Andersen points-to site facts, and the static
// lockset lint.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dataflow.h"
#include "analysis/LocksetLint.h"
#include "analysis/PointsTo.h"
#include "analysis/Verifier.h"
#include "vm/Compiler.h"
#include "vm/Diag.h"
#include "vm/Machine.h"
#include "vm/Optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace isp;
using namespace isp::analysis;

namespace {

Program compile(const std::string &Source) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render();
  return Prog ? std::move(*Prog) : Program();
}

// --- CFG. ---

TEST(CfgTest, LoopFunctionShape) {
  Program Prog = compile(R"(
    fn main() {
      var sum = 0;
      for (var i = 0; i < 10; i = i + 1) { sum = sum + i; }
      print(sum);
      return 0;
    })");
  const Function &F = Prog.Functions[Prog.EntryIndex];
  CFG G(F);
  ASSERT_GE(G.numBlocks(), 3u);
  EXPECT_EQ(G.entry(), 0u);
  EXPECT_EQ(G.block(0).Begin, 0u);

  // Blocks partition the code and agree with blockOf().
  size_t Covered = 0;
  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    const BasicBlock &Blk = G.block(B);
    ASSERT_LT(Blk.Begin, Blk.End);
    Covered += Blk.End - Blk.Begin;
    for (size_t I = Blk.Begin; I != Blk.End; ++I)
      EXPECT_EQ(G.blockOf(I), B);
  }
  EXPECT_EQ(Covered, F.Code.size());

  // Edges are symmetric (succ lists match pred lists).
  for (uint32_t B = 0; B != G.numBlocks(); ++B)
    for (uint32_t S : G.block(B).Succs) {
      const auto &Preds = G.block(S).Preds;
      EXPECT_NE(std::find(Preds.begin(), Preds.end(), B), Preds.end());
    }

  // The loop body is cyclic; the entry block is not.
  bool AnyCycle = false;
  for (uint32_t B = 0; B != G.numBlocks(); ++B)
    AnyCycle |= G.inCycle(B);
  EXPECT_TRUE(AnyCycle);
  EXPECT_FALSE(G.inCycle(G.entry()));

  // RPO visits the entry first and lists every block exactly once.
  ASSERT_EQ(G.rpo().size(), G.numBlocks());
  EXPECT_EQ(G.rpo().front(), G.entry());
}

TEST(CfgTest, StraightLineIsOneReachableRegion) {
  Program Prog = compile("fn main() { return 1 + 2; }");
  CFG G(Prog.Functions[Prog.EntryIndex]);
  EXPECT_TRUE(G.reachable(G.entry()));
  for (uint32_t B = 0; B != G.numBlocks(); ++B)
    EXPECT_FALSE(G.inCycle(B));
}

TEST(CfgTest, StackEffects) {
  auto effect = [](Op O, int64_t A = 0, int64_t B = 0) {
    Instr I;
    I.Opcode = O;
    I.A = A;
    I.B = B;
    return stackEffect(I);
  };
  EXPECT_EQ(effect(Op::PushConst).Pops, 0);
  EXPECT_EQ(effect(Op::PushConst).Pushes, 1);
  EXPECT_EQ(effect(Op::StoreIndirect).Pops, 3);
  EXPECT_EQ(effect(Op::StoreIndirect).Pushes, 0);
  EXPECT_EQ(effect(Op::LoadIndirect).Pops, 2);
  EXPECT_EQ(effect(Op::LoadIndirect).Pushes, 1);
  EXPECT_EQ(effect(Op::Add).Pops, 2);
  EXPECT_EQ(effect(Op::Add).Pushes, 1);
  // Calls pop their arguments and push one result.
  EXPECT_EQ(effect(Op::Call, 0, 3).Pops, 3);
  EXPECT_EQ(effect(Op::Call, 0, 3).Pushes, 1);
  EXPECT_EQ(effect(Op::Return).Pops, 1);
  EXPECT_EQ(effect(Op::Return).Pushes, 0);
}

// --- Dataflow solver. ---

/// Forward: can this block be reached without passing a BasicBlock
/// marker? (Gen/kill on a one-bit lattice; join = logical OR.)
struct MarkerFreeProblem {
  using State = int; // -1 top, 0 no, 1 yes
  State boundary() const { return 1; }
  State top() const { return -1; }
  bool join(State &Into, const State &From) const {
    State New = Into == -1 ? From : (Into | From);
    bool Changed = New != Into;
    Into = New;
    return Changed;
  }
  State transfer(const CFG &G, uint32_t Block, State In) const {
    if (In != 1)
      return In;
    const BasicBlock &B = G.block(Block);
    for (size_t I = B.Begin; I != B.End; ++I)
      if (G.function().Code[I].Opcode == Op::BasicBlock)
        return 0;
    return 1;
  }
};

/// Backward: number of blocks on the shortest path to a function exit
/// (min join) — exercises the against-the-edges propagation.
struct DistanceToExitProblem {
  using State = int; // large = top
  static constexpr int Inf = 1 << 20;
  State boundary() const { return 0; }
  State top() const { return Inf; }
  bool join(State &Into, const State &From) const {
    int New = std::min(Into, From);
    bool Changed = New != Into;
    Into = New;
    return Changed;
  }
  State transfer(const CFG &, uint32_t, State Out) const {
    return Out == Inf ? Inf : Out + 1;
  }
};

TEST(DataflowTest, ForwardReachesFixpointOnLoop) {
  Program Prog = compile(R"(
    fn main() {
      var i = 0;
      while (i < 5) { i = i + 1; }
      return i;
    })");
  CFG G(Prog.Functions[Prog.EntryIndex]);
  std::vector<int> Entry =
      solveDataflow(G, MarkerFreeProblem(), Direction::Forward);
  // The compiler emits a BasicBlock marker at the function entry, so
  // every block *after* it — in particular every loop block — is
  // reached only through a marker.
  EXPECT_EQ(Entry[G.entry()], 1);
  for (uint32_t B = 1; B != G.numBlocks(); ++B)
    if (G.reachable(B))
      EXPECT_EQ(Entry[B], 0) << "block " << B;
}

TEST(DataflowTest, BackwardDistanceToExit) {
  Program Prog = compile(R"(
    fn main() {
      var x = 7;
      if (x > 3) { x = 1; } else { x = 2; }
      return x;
    })");
  CFG G(Prog.Functions[Prog.EntryIndex]);
  std::vector<int> Exit =
      solveDataflow(G, DistanceToExitProblem(), Direction::Backward);
  // Exit blocks see distance 0; everything reachable sees a finite
  // distance that decreases along some successor edge.
  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    if (!G.reachable(B))
      continue;
    ASSERT_LT(Exit[B], DistanceToExitProblem::Inf) << "block " << B;
    if (G.block(B).Succs.empty())
      EXPECT_EQ(Exit[B], 0);
    else {
      int Best = DistanceToExitProblem::Inf;
      for (uint32_t S : G.block(B).Succs)
        Best = std::min(Best, Exit[S]);
      EXPECT_EQ(Exit[B], Best + 1);
    }
  }
}

// --- Verifier. ---

TEST(VerifierTest, CompilerAndOptimizerOutputVerifyClean) {
  const char *Sources[] = {
      "fn main() { return 0; }",
      R"(
        var a[16];
        var g;
        fn helper(x, y) { return x * y + a[x % 16]; }
        fn main() {
          g = 0;
          for (var i = 0; i < 8; i = i + 1) {
            a[i] = helper(i, i + 1);
            g = g + a[i];
          }
          var t = spawn helper(2, 3);
          print(join(t));
          return g;
        })",
  };
  for (const char *Source : Sources) {
    Program Prog = compile(Source);
    EXPECT_TRUE(verifyProgram(Prog).ok()) << Source;
    optimizeProgram(Prog);
    VerifyResult R = verifyProgram(Prog);
    EXPECT_TRUE(R.ok()) << R.render(Prog);
  }
}

/// A minimal structurally-valid program to corrupt: main with one
/// local, one global cell.
Program tinyProgram() {
  Program Prog;
  Prog.GlobalCells = 1;
  Function F;
  F.Name = "main";
  F.NumLocals = 1;
  F.Code.push_back({Op::PushConst, 0, 0});
  F.Code.push_back({Op::Return, 0, 0});
  Prog.Functions.push_back(std::move(F));
  return Prog;
}

TEST(VerifierTest, AcceptsTinyProgram) {
  Program Prog = tinyProgram();
  VerifyResult R = verifyProgram(Prog);
  EXPECT_TRUE(R.ok()) << R.render(Prog);
}

TEST(VerifierTest, RejectsStructuralCorruption) {
  struct Case {
    const char *Label;
    void (*Corrupt)(Program &);
  } Cases[] = {
      {"opcode out of range",
       [](Program &P) {
         P.Functions[0].Code[0].Opcode = static_cast<Op>(200);
       }},
      {"jump target out of range",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::Jump, 99, 0};
       }},
      {"negative jump target",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::Jump, -1, 0};
       }},
      {"falls off the end",
       [](Program &P) { P.Functions[0].Code.pop_back(); }},
      {"local slot out of range",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::LoadLocal, 5, 0};
       }},
      {"global address outside region",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::LoadGlobal, 3, 0};
       }},
      {"callee index invalid",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::Call, 7, 0};
       }},
      {"builtin arity mismatch",
       [](Program &P) {
         P.Functions[0].Code[0] = {
             Op::CallBuiltin, static_cast<int64_t>(Builtin::Print), 0};
       }},
      {"builtin id invalid",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::CallBuiltin, 99, 0};
       }},
      {"stray operand on plain opcode",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::Nop, 0, 1};
       }},
      {"quiet mark on non-access opcode",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::PushConst, 0, 1};
       }},
      {"params exceed locals",
       [](Program &P) { P.Functions[0].NumParams = 3; }},
      {"entry index invalid",
       [](Program &P) { P.EntryIndex = 4; }},
  };
  for (const Case &C : Cases) {
    Program Prog = tinyProgram();
    C.Corrupt(Prog);
    EXPECT_FALSE(verifyProgram(Prog).ok()) << C.Label;
  }
}

TEST(VerifierTest, RejectsStackDisciplineViolations) {
  // Underflow: Add on an empty stack.
  {
    Program Prog = tinyProgram();
    Prog.Functions[0].Code.insert(Prog.Functions[0].Code.begin(),
                                  {Op::Add, 0, 0});
    EXPECT_FALSE(verifyProgram(Prog).ok());
  }
  // Return with an empty stack.
  {
    Program Prog = tinyProgram();
    Prog.Functions[0].Code = {{Op::Return, 0, 0}};
    EXPECT_FALSE(verifyProgram(Prog).ok());
  }
  // Join-depth conflict: two paths reach the same target with depths
  // 0 and 2.
  {
    Program Prog = tinyProgram();
    Prog.Functions[0].Code = {
        {Op::PushConst, 1, 0},  // 0: depth 0 -> 1
        {Op::JumpIfTrue, 4, 0}, // 1: pops; taken -> pc 4 at depth 0
        {Op::PushConst, 2, 0},  // 2: depth 0 -> 1
        {Op::PushConst, 3, 0},  // 3: depth 1 -> 2; falls into pc 4
        {Op::PushConst, 9, 0},  // 4: joined at depth 0 vs 2: conflict
        {Op::Return, 0, 0},
    };
    EXPECT_FALSE(verifyProgram(Prog).ok());
  }
}

TEST(VerifierTest, RenderNamesFunctionAndPc) {
  Program Prog = tinyProgram();
  Prog.Functions[0].Code[0] = {Op::Jump, 99, 0};
  VerifyResult R = verifyProgram(Prog);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.render(Prog).find("main"), std::string::npos);
}

// --- Points-to. ---

TEST(PointsToTest, GlobalArrayConstIndexIsPreciseBounded) {
  Program Prog = compile(R"(
    var a[8];
    fn main() {
      a[2] = 5;
      return a[2];
    })");
  PointsToResult PT = computePointsTo(Prog);
  ASSERT_FALSE(Prog.GlobalArrays.empty());
  size_t Fn = Prog.EntryIndex;
  const Function &F = Prog.Functions[Fn];
  unsigned Checked = 0;
  for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
    Op O = F.Code[Pc].Opcode;
    if (O != Op::LoadIndirect && O != Op::StoreIndirect)
      continue;
    const SiteFacts *Facts = PT.siteFacts(Fn, Pc);
    ASSERT_NE(Facts, nullptr);
    EXPECT_TRUE(Facts->BaseKnown);
    EXPECT_TRUE(Facts->PreciseBoundedBase);
    EXPECT_EQ(Facts->MinCells, 8u);
    ASSERT_EQ(Facts->Objects.size(), 1u);
    EXPECT_EQ(PT.Objects[Facts->Objects[0]].K,
              AbstractObject::Kind::GlobalArray);
    EXPECT_EQ(F.Code[Pc].Opcode == Op::StoreIndirect, Facts->IsStore);
    ++Checked;
  }
  EXPECT_EQ(Checked, 2u);
  EXPECT_FALSE(PT.HasWildStore);
  EXPECT_GT(PT.TotalFacts, 0u);
}

TEST(PointsToTest, PointerArithmeticTaintsPrecision) {
  // p = a + 1 still points into a's storage (provenance tracked) but is
  // no longer the exact base: PreciseBoundedBase must be off.
  Program Prog = compile(R"(
    var a[8];
    fn main() {
      var p = a + 1;
      return p[0];
    })");
  PointsToResult PT = computePointsTo(Prog);
  size_t Fn = Prog.EntryIndex;
  const Function &F = Prog.Functions[Fn];
  for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
    if (F.Code[Pc].Opcode != Op::LoadIndirect)
      continue;
    const SiteFacts *Facts = PT.siteFacts(Fn, Pc);
    ASSERT_NE(Facts, nullptr);
    EXPECT_TRUE(Facts->BaseKnown);
    EXPECT_FALSE(Facts->PreciseBoundedBase);
  }
}

TEST(PointsToTest, PointerFlowsThroughCallsAndGlobals) {
  // The base reaches the access through a global cell and a call
  // boundary; provenance must survive both.
  Program Prog = compile(R"(
    var buf;
    fn reader(p) { return p[0]; }
    fn main() {
      buf = alloc(4);
      return reader(buf);
    })");
  PointsToResult PT = computePointsTo(Prog);
  const Function *Reader = Prog.findFunction("reader");
  ASSERT_NE(Reader, nullptr);
  size_t Fn = static_cast<size_t>(Reader - Prog.Functions.data());
  unsigned Found = 0;
  for (size_t Pc = 0; Pc != Reader->Code.size(); ++Pc) {
    if (Reader->Code[Pc].Opcode != Op::LoadIndirect)
      continue;
    const SiteFacts *Facts = PT.siteFacts(Fn, Pc);
    ASSERT_NE(Facts, nullptr);
    EXPECT_TRUE(Facts->BaseKnown);
    ASSERT_EQ(Facts->Objects.size(), 1u);
    EXPECT_EQ(PT.Objects[Facts->Objects[0]].K,
              AbstractObject::Kind::HeapSite);
    ++Found;
  }
  EXPECT_EQ(Found, 1u);
}

TEST(PointsToTest, RawStoreBuiltinIsWild) {
  Program Prog = compile(R"(
    fn main() {
      store(16, 1);
      return load(16);
    })");
  PointsToResult PT = computePointsTo(Prog);
  EXPECT_TRUE(PT.HasWildStore);
}

// --- Lockset lint. ---

TEST(LintTest, FlagsUnprotectedSharedGlobal) {
  Program Prog = compile(R"(
    var racy;
    var safe;
    var lk;
    fn worker(n) {
      for (var i = 0; i < n; i = i + 1) {
        racy = racy + 1;
        lock_acquire(lk);
        safe = safe + 1;
        lock_release(lk);
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      racy = 0;
      safe = 0;
      var a = spawn worker(10);
      var b = spawn worker(10);
      join(a);
      join(b);
      lock_acquire(lk);
      var t = safe;
      lock_release(lk);
      return t;
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_GE(Report.ContextCount, 3u);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_EQ(Report.Warnings[0].Address, GlobalBase); // racy: first cell
  EXPECT_EQ(Report.Warnings[0].Name, "racy");
  EXPECT_GE(Report.Warnings[0].Contexts, 2u);
  EXPECT_GE(Report.Warnings[0].Writers, 1u);
  EXPECT_NE(Report.render().find("possible race at address 16"),
            std::string::npos);
}

TEST(LintTest, SilentOnConsistentLocking) {
  Program Prog = compile(R"(
    var count;
    var lk;
    fn worker(n) {
      for (var i = 0; i < n; i = i + 1) {
        lock_acquire(lk);
        count = count + 1;
        lock_release(lk);
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      count = 0;
      var a = spawn worker(10);
      var b = spawn worker(10);
      join(a);
      join(b);
      lock_acquire(lk);
      var t = count;
      lock_release(lk);
      return t;
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_TRUE(Report.Warnings.empty()) << Report.render();
  EXPECT_NE(Report.render().find("0 location(s)"), std::string::npos);
}

TEST(LintTest, InitPhaseWritesAreNotRaces) {
  // Main writes g before spawning; the worker only reads it. One
  // post-spawn writer context is required for a warning.
  Program Prog = compile(R"(
    var g;
    fn worker(n) { return g + n; }
    fn main() {
      g = 42;
      var a = spawn worker(1);
      var b = spawn worker(2);
      return join(a) + join(b);
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_TRUE(Report.Warnings.empty()) << Report.render();
}

TEST(LintTest, SpawnInLoopCountsAsManyThreads) {
  // One spawn site inside a loop: the worker races with its own other
  // instances even though there is a single Spawn instruction.
  Program Prog = compile(R"(
    var g;
    fn worker(n) {
      g = g + n;
      return 0;
    }
    fn main() {
      g = 0;
      for (var i = 0; i < 4; i = i + 1) {
        var t = spawn worker(i);
        join(t);
      }
      return g;
    })");
  LintReport Report = runLocksetLint(Prog);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_EQ(Report.Warnings[0].Name, "g");
}

TEST(LintTest, SingleThreadedProgramsNeverWarn) {
  Program Prog = compile(R"(
    var g;
    fn main() {
      g = 1;
      g = g + 1;
      return g;
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_EQ(Report.ContextCount, 1u);
  EXPECT_TRUE(Report.Warnings.empty());
}

TEST(LintTest, ArrayAccessesAttributedThroughPointsTo) {
  // Two threads write a global array through indirect stores with no
  // lock: the storage base must be flagged via points-to attribution.
  Program Prog = compile(R"(
    var a[8];
    fn worker(i) {
      a[i] = i;
      return 0;
    }
    fn main() {
      var x = spawn worker(1);
      var y = spawn worker(2);
      join(x);
      join(y);
      return a[1];
    })");
  LintReport Report = runLocksetLint(Prog);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_TRUE(Report.Warnings[0].IsArray);
  EXPECT_EQ(Report.Warnings[0].Name, "a");
  EXPECT_EQ(Report.Warnings[0].Address, Prog.GlobalArrays[0].Base);
}

TEST(LintTest, JoinPublishesWorkerWritesHappensBefore) {
  // join() retires the spawned thread: after the join main is the only
  // thread running, so its unlocked writes to the worker's global are
  // not races. No lock appears anywhere in the program.
  Program Prog = compile(R"(
    var tally;
    fn worker(n) {
      for (var i = 0; i < n; i = i + 1) {
        tally = tally + i;
      }
      return tally;
    }
    fn main() {
      tally = 0;
      var t = spawn worker(8);
      var partial = join(t);
      tally = tally + partial;
      return tally;
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_TRUE(Report.Warnings.empty()) << Report.render();
}

TEST(LintTest, AccessBetweenSpawnAndJoinStillWarns) {
  // The happens-before edge is at the join, not the spawn: a write in
  // the window where the worker is live races with the worker's writes.
  Program Prog = compile(R"(
    var g;
    fn worker(n) {
      g = g + n;
      return 0;
    }
    fn main() {
      g = 0;
      var t = spawn worker(5);
      g = g + 1;
      var r = join(t);
      return g + r;
    })");
  LintReport Report = runLocksetLint(Prog);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_EQ(Report.Warnings[0].Name, "g");
}

TEST(LintTest, CalleeThatMaySpawnPinsTheLiveBound) {
  // Spawns hidden behind a call are accounted conservatively: once main
  // calls a may-spawn callee, the live-thread bound saturates and stays
  // saturated — a later join of a local handle cannot prove quiescence.
  Program Prog = compile(R"(
    var g;
    fn worker(n) {
      g = g + n;
      return 0;
    }
    fn helper() {
      var t = spawn worker(3);
      return join(t);
    }
    fn main() {
      g = 0;
      var r = helper();
      g = g + r;
      return g;
    })");
  LintReport Report = runLocksetLint(Prog);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_EQ(Report.Warnings[0].Name, "g");
}

// --- End to end: verified programs run clean. ---

TEST(AnalysisIntegration, VerifiedExamplesExecute) {
  Program Prog = compile(R"(
    var a[4];
    fn main() {
      for (var i = 0; i < 4; i = i + 1) { a[i] = i * i; }
      return a[3];
    })");
  optimizeProgram(Prog);
  ASSERT_TRUE(verifyProgram(Prog).ok());
  RunResult R = Machine(Prog, nullptr).run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ExitCode, 9);
}

} // namespace
