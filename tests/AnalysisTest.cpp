//===- tests/AnalysisTest.cpp - Static analysis layer tests --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for src/analysis: CFG construction, the generic dataflow
// solver (forward and backward), the bytecode verifier on valid and
// adversarial programs, Andersen points-to site facts, and the static
// lockset lint.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dataflow.h"
#include "analysis/Escape.h"
#include "analysis/LocksetLint.h"
#include "analysis/PointsTo.h"
#include "analysis/Range.h"
#include "analysis/Verifier.h"
#include "vm/Compiler.h"
#include "vm/Diag.h"
#include "vm/Machine.h"
#include "vm/Optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace isp;
using namespace isp::analysis;

namespace {

Program compile(const std::string &Source) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render();
  return Prog ? std::move(*Prog) : Program();
}

// --- CFG. ---

TEST(CfgTest, LoopFunctionShape) {
  Program Prog = compile(R"(
    fn main() {
      var sum = 0;
      for (var i = 0; i < 10; i = i + 1) { sum = sum + i; }
      print(sum);
      return 0;
    })");
  const Function &F = Prog.Functions[Prog.EntryIndex];
  CFG G(F);
  ASSERT_GE(G.numBlocks(), 3u);
  EXPECT_EQ(G.entry(), 0u);
  EXPECT_EQ(G.block(0).Begin, 0u);

  // Blocks partition the code and agree with blockOf().
  size_t Covered = 0;
  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    const BasicBlock &Blk = G.block(B);
    ASSERT_LT(Blk.Begin, Blk.End);
    Covered += Blk.End - Blk.Begin;
    for (size_t I = Blk.Begin; I != Blk.End; ++I)
      EXPECT_EQ(G.blockOf(I), B);
  }
  EXPECT_EQ(Covered, F.Code.size());

  // Edges are symmetric (succ lists match pred lists).
  for (uint32_t B = 0; B != G.numBlocks(); ++B)
    for (uint32_t S : G.block(B).Succs) {
      const auto &Preds = G.block(S).Preds;
      EXPECT_NE(std::find(Preds.begin(), Preds.end(), B), Preds.end());
    }

  // The loop body is cyclic; the entry block is not.
  bool AnyCycle = false;
  for (uint32_t B = 0; B != G.numBlocks(); ++B)
    AnyCycle |= G.inCycle(B);
  EXPECT_TRUE(AnyCycle);
  EXPECT_FALSE(G.inCycle(G.entry()));

  // RPO visits the entry first and lists every block exactly once.
  ASSERT_EQ(G.rpo().size(), G.numBlocks());
  EXPECT_EQ(G.rpo().front(), G.entry());
}

TEST(CfgTest, StraightLineIsOneReachableRegion) {
  Program Prog = compile("fn main() { return 1 + 2; }");
  CFG G(Prog.Functions[Prog.EntryIndex]);
  EXPECT_TRUE(G.reachable(G.entry()));
  for (uint32_t B = 0; B != G.numBlocks(); ++B)
    EXPECT_FALSE(G.inCycle(B));
}

TEST(CfgTest, StackEffects) {
  auto effect = [](Op O, int64_t A = 0, int64_t B = 0) {
    Instr I;
    I.Opcode = O;
    I.A = A;
    I.B = B;
    return stackEffect(I);
  };
  EXPECT_EQ(effect(Op::PushConst).Pops, 0);
  EXPECT_EQ(effect(Op::PushConst).Pushes, 1);
  EXPECT_EQ(effect(Op::StoreIndirect).Pops, 3);
  EXPECT_EQ(effect(Op::StoreIndirect).Pushes, 0);
  EXPECT_EQ(effect(Op::LoadIndirect).Pops, 2);
  EXPECT_EQ(effect(Op::LoadIndirect).Pushes, 1);
  EXPECT_EQ(effect(Op::Add).Pops, 2);
  EXPECT_EQ(effect(Op::Add).Pushes, 1);
  // Calls pop their arguments and push one result.
  EXPECT_EQ(effect(Op::Call, 0, 3).Pops, 3);
  EXPECT_EQ(effect(Op::Call, 0, 3).Pushes, 1);
  EXPECT_EQ(effect(Op::Return).Pops, 1);
  EXPECT_EQ(effect(Op::Return).Pushes, 0);
}

// --- Dataflow solver. ---

/// Forward: can this block be reached without passing a BasicBlock
/// marker? (Gen/kill on a one-bit lattice; join = logical OR.)
struct MarkerFreeProblem {
  using State = int; // -1 top, 0 no, 1 yes
  State boundary() const { return 1; }
  State top() const { return -1; }
  bool join(State &Into, const State &From) const {
    State New = Into == -1 ? From : (Into | From);
    bool Changed = New != Into;
    Into = New;
    return Changed;
  }
  State transfer(const CFG &G, uint32_t Block, State In) const {
    if (In != 1)
      return In;
    const BasicBlock &B = G.block(Block);
    for (size_t I = B.Begin; I != B.End; ++I)
      if (G.function().Code[I].Opcode == Op::BasicBlock)
        return 0;
    return 1;
  }
};

/// Backward: number of blocks on the shortest path to a function exit
/// (min join) — exercises the against-the-edges propagation.
struct DistanceToExitProblem {
  using State = int; // large = top
  static constexpr int Inf = 1 << 20;
  State boundary() const { return 0; }
  State top() const { return Inf; }
  bool join(State &Into, const State &From) const {
    int New = std::min(Into, From);
    bool Changed = New != Into;
    Into = New;
    return Changed;
  }
  State transfer(const CFG &, uint32_t, State Out) const {
    return Out == Inf ? Inf : Out + 1;
  }
};

TEST(DataflowTest, ForwardReachesFixpointOnLoop) {
  Program Prog = compile(R"(
    fn main() {
      var i = 0;
      while (i < 5) { i = i + 1; }
      return i;
    })");
  CFG G(Prog.Functions[Prog.EntryIndex]);
  std::vector<int> Entry =
      solveDataflow(G, MarkerFreeProblem(), Direction::Forward);
  // The compiler emits a BasicBlock marker at the function entry, so
  // every block *after* it — in particular every loop block — is
  // reached only through a marker.
  EXPECT_EQ(Entry[G.entry()], 1);
  for (uint32_t B = 1; B != G.numBlocks(); ++B)
    if (G.reachable(B))
      EXPECT_EQ(Entry[B], 0) << "block " << B;
}

TEST(DataflowTest, BackwardDistanceToExit) {
  Program Prog = compile(R"(
    fn main() {
      var x = 7;
      if (x > 3) { x = 1; } else { x = 2; }
      return x;
    })");
  CFG G(Prog.Functions[Prog.EntryIndex]);
  std::vector<int> Exit =
      solveDataflow(G, DistanceToExitProblem(), Direction::Backward);
  // Exit blocks see distance 0; everything reachable sees a finite
  // distance that decreases along some successor edge.
  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    if (!G.reachable(B))
      continue;
    ASSERT_LT(Exit[B], DistanceToExitProblem::Inf) << "block " << B;
    if (G.block(B).Succs.empty())
      EXPECT_EQ(Exit[B], 0);
    else {
      int Best = DistanceToExitProblem::Inf;
      for (uint32_t S : G.block(B).Succs)
        Best = std::min(Best, Exit[S]);
      EXPECT_EQ(Exit[B], Best + 1);
    }
  }
}

// --- Verifier. ---

TEST(VerifierTest, CompilerAndOptimizerOutputVerifyClean) {
  const char *Sources[] = {
      "fn main() { return 0; }",
      R"(
        var a[16];
        var g;
        fn helper(x, y) { return x * y + a[x % 16]; }
        fn main() {
          g = 0;
          for (var i = 0; i < 8; i = i + 1) {
            a[i] = helper(i, i + 1);
            g = g + a[i];
          }
          var t = spawn helper(2, 3);
          print(join(t));
          return g;
        })",
  };
  for (const char *Source : Sources) {
    Program Prog = compile(Source);
    EXPECT_TRUE(verifyProgram(Prog).ok()) << Source;
    optimizeProgram(Prog);
    VerifyResult R = verifyProgram(Prog);
    EXPECT_TRUE(R.ok()) << R.render(Prog);
  }
}

/// A minimal structurally-valid program to corrupt: main with one
/// local, one global cell.
Program tinyProgram() {
  Program Prog;
  Prog.GlobalCells = 1;
  Function F;
  F.Name = "main";
  F.NumLocals = 1;
  F.Code.push_back({Op::PushConst, 0, 0});
  F.Code.push_back({Op::Return, 0, 0});
  Prog.Functions.push_back(std::move(F));
  return Prog;
}

TEST(VerifierTest, AcceptsTinyProgram) {
  Program Prog = tinyProgram();
  VerifyResult R = verifyProgram(Prog);
  EXPECT_TRUE(R.ok()) << R.render(Prog);
}

TEST(VerifierTest, RejectsStructuralCorruption) {
  struct Case {
    const char *Label;
    void (*Corrupt)(Program &);
  } Cases[] = {
      {"opcode out of range",
       [](Program &P) {
         P.Functions[0].Code[0].Opcode = static_cast<Op>(200);
       }},
      {"jump target out of range",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::Jump, 99, 0};
       }},
      {"negative jump target",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::Jump, -1, 0};
       }},
      {"falls off the end",
       [](Program &P) { P.Functions[0].Code.pop_back(); }},
      {"local slot out of range",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::LoadLocal, 5, 0};
       }},
      {"global address outside region",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::LoadGlobal, 3, 0};
       }},
      {"callee index invalid",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::Call, 7, 0};
       }},
      {"builtin arity mismatch",
       [](Program &P) {
         P.Functions[0].Code[0] = {
             Op::CallBuiltin, static_cast<int64_t>(Builtin::Print), 0};
       }},
      {"builtin id invalid",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::CallBuiltin, 99, 0};
       }},
      {"stray operand on plain opcode",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::Nop, 0, 1};
       }},
      {"quiet mark on non-access opcode",
       [](Program &P) {
         P.Functions[0].Code[0] = {Op::PushConst, 0, 1};
       }},
      {"params exceed locals",
       [](Program &P) { P.Functions[0].NumParams = 3; }},
      {"entry index invalid",
       [](Program &P) { P.EntryIndex = 4; }},
  };
  for (const Case &C : Cases) {
    Program Prog = tinyProgram();
    C.Corrupt(Prog);
    EXPECT_FALSE(verifyProgram(Prog).ok()) << C.Label;
  }
}

TEST(VerifierTest, RejectsStackDisciplineViolations) {
  // Underflow: Add on an empty stack.
  {
    Program Prog = tinyProgram();
    Prog.Functions[0].Code.insert(Prog.Functions[0].Code.begin(),
                                  {Op::Add, 0, 0});
    EXPECT_FALSE(verifyProgram(Prog).ok());
  }
  // Return with an empty stack.
  {
    Program Prog = tinyProgram();
    Prog.Functions[0].Code = {{Op::Return, 0, 0}};
    EXPECT_FALSE(verifyProgram(Prog).ok());
  }
  // Join-depth conflict: two paths reach the same target with depths
  // 0 and 2.
  {
    Program Prog = tinyProgram();
    Prog.Functions[0].Code = {
        {Op::PushConst, 1, 0},  // 0: depth 0 -> 1
        {Op::JumpIfTrue, 4, 0}, // 1: pops; taken -> pc 4 at depth 0
        {Op::PushConst, 2, 0},  // 2: depth 0 -> 1
        {Op::PushConst, 3, 0},  // 3: depth 1 -> 2; falls into pc 4
        {Op::PushConst, 9, 0},  // 4: joined at depth 0 vs 2: conflict
        {Op::Return, 0, 0},
    };
    EXPECT_FALSE(verifyProgram(Prog).ok());
  }
}

TEST(VerifierTest, RenderNamesFunctionAndPc) {
  Program Prog = tinyProgram();
  Prog.Functions[0].Code[0] = {Op::Jump, 99, 0};
  VerifyResult R = verifyProgram(Prog);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.render(Prog).find("main"), std::string::npos);
}

// --- Points-to. ---

TEST(PointsToTest, GlobalArrayConstIndexIsPreciseBounded) {
  Program Prog = compile(R"(
    var a[8];
    fn main() {
      a[2] = 5;
      return a[2];
    })");
  PointsToResult PT = computePointsTo(Prog);
  ASSERT_FALSE(Prog.GlobalArrays.empty());
  size_t Fn = Prog.EntryIndex;
  const Function &F = Prog.Functions[Fn];
  unsigned Checked = 0;
  for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
    Op O = F.Code[Pc].Opcode;
    if (O != Op::LoadIndirect && O != Op::StoreIndirect)
      continue;
    const SiteFacts *Facts = PT.siteFacts(Fn, Pc);
    ASSERT_NE(Facts, nullptr);
    EXPECT_TRUE(Facts->BaseKnown);
    EXPECT_TRUE(Facts->PreciseBoundedBase);
    EXPECT_EQ(Facts->MinCells, 8u);
    ASSERT_EQ(Facts->Objects.size(), 1u);
    EXPECT_EQ(PT.Objects[Facts->Objects[0]].K,
              AbstractObject::Kind::GlobalArray);
    EXPECT_EQ(F.Code[Pc].Opcode == Op::StoreIndirect, Facts->IsStore);
    ++Checked;
  }
  EXPECT_EQ(Checked, 2u);
  EXPECT_FALSE(PT.HasWildStore);
  EXPECT_GT(PT.TotalFacts, 0u);
}

TEST(PointsToTest, PointerArithmeticTaintsPrecision) {
  // p = a + 1 still points into a's storage (provenance tracked) but is
  // no longer the exact base: PreciseBoundedBase must be off.
  Program Prog = compile(R"(
    var a[8];
    fn main() {
      var p = a + 1;
      return p[0];
    })");
  PointsToResult PT = computePointsTo(Prog);
  size_t Fn = Prog.EntryIndex;
  const Function &F = Prog.Functions[Fn];
  for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
    if (F.Code[Pc].Opcode != Op::LoadIndirect)
      continue;
    const SiteFacts *Facts = PT.siteFacts(Fn, Pc);
    ASSERT_NE(Facts, nullptr);
    EXPECT_TRUE(Facts->BaseKnown);
    EXPECT_FALSE(Facts->PreciseBoundedBase);
  }
}

TEST(PointsToTest, PointerFlowsThroughCallsAndGlobals) {
  // The base reaches the access through a global cell and a call
  // boundary; provenance must survive both.
  Program Prog = compile(R"(
    var buf;
    fn reader(p) { return p[0]; }
    fn main() {
      buf = alloc(4);
      return reader(buf);
    })");
  PointsToResult PT = computePointsTo(Prog);
  const Function *Reader = Prog.findFunction("reader");
  ASSERT_NE(Reader, nullptr);
  size_t Fn = static_cast<size_t>(Reader - Prog.Functions.data());
  unsigned Found = 0;
  for (size_t Pc = 0; Pc != Reader->Code.size(); ++Pc) {
    if (Reader->Code[Pc].Opcode != Op::LoadIndirect)
      continue;
    const SiteFacts *Facts = PT.siteFacts(Fn, Pc);
    ASSERT_NE(Facts, nullptr);
    EXPECT_TRUE(Facts->BaseKnown);
    ASSERT_EQ(Facts->Objects.size(), 1u);
    EXPECT_EQ(PT.Objects[Facts->Objects[0]].K,
              AbstractObject::Kind::HeapSite);
    ++Found;
  }
  EXPECT_EQ(Found, 1u);
}

TEST(PointsToTest, RawStoreBuiltinIsWild) {
  Program Prog = compile(R"(
    fn main() {
      store(16, 1);
      return load(16);
    })");
  PointsToResult PT = computePointsTo(Prog);
  EXPECT_TRUE(PT.HasWildStore);
}

// --- Lockset lint. ---

TEST(LintTest, FlagsUnprotectedSharedGlobal) {
  Program Prog = compile(R"(
    var racy;
    var safe;
    var lk;
    fn worker(n) {
      for (var i = 0; i < n; i = i + 1) {
        racy = racy + 1;
        lock_acquire(lk);
        safe = safe + 1;
        lock_release(lk);
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      racy = 0;
      safe = 0;
      var a = spawn worker(10);
      var b = spawn worker(10);
      join(a);
      join(b);
      lock_acquire(lk);
      var t = safe;
      lock_release(lk);
      return t;
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_GE(Report.ContextCount, 3u);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_EQ(Report.Warnings[0].Address, GlobalBase); // racy: first cell
  EXPECT_EQ(Report.Warnings[0].Name, "racy");
  EXPECT_GE(Report.Warnings[0].Contexts, 2u);
  EXPECT_GE(Report.Warnings[0].Writers, 1u);
  EXPECT_NE(Report.render().find("possible race at address 16"),
            std::string::npos);
}

TEST(LintTest, SilentOnConsistentLocking) {
  Program Prog = compile(R"(
    var count;
    var lk;
    fn worker(n) {
      for (var i = 0; i < n; i = i + 1) {
        lock_acquire(lk);
        count = count + 1;
        lock_release(lk);
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      count = 0;
      var a = spawn worker(10);
      var b = spawn worker(10);
      join(a);
      join(b);
      lock_acquire(lk);
      var t = count;
      lock_release(lk);
      return t;
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_TRUE(Report.Warnings.empty()) << Report.render();
  EXPECT_NE(Report.render().find("0 location(s)"), std::string::npos);
}

TEST(LintTest, InitPhaseWritesAreNotRaces) {
  // Main writes g before spawning; the worker only reads it. One
  // post-spawn writer context is required for a warning.
  Program Prog = compile(R"(
    var g;
    fn worker(n) { return g + n; }
    fn main() {
      g = 42;
      var a = spawn worker(1);
      var b = spawn worker(2);
      return join(a) + join(b);
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_TRUE(Report.Warnings.empty()) << Report.render();
}

TEST(LintTest, SpawnInLoopCountsAsManyThreads) {
  // One spawn site inside a loop: the worker races with its own other
  // instances even though there is a single Spawn instruction.
  Program Prog = compile(R"(
    var g;
    fn worker(n) {
      g = g + n;
      return 0;
    }
    fn main() {
      g = 0;
      for (var i = 0; i < 4; i = i + 1) {
        var t = spawn worker(i);
        join(t);
      }
      return g;
    })");
  LintReport Report = runLocksetLint(Prog);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_EQ(Report.Warnings[0].Name, "g");
}

TEST(LintTest, SingleThreadedProgramsNeverWarn) {
  Program Prog = compile(R"(
    var g;
    fn main() {
      g = 1;
      g = g + 1;
      return g;
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_EQ(Report.ContextCount, 1u);
  EXPECT_TRUE(Report.Warnings.empty());
}

TEST(LintTest, ArrayAccessesAttributedThroughPointsTo) {
  // Two threads write a global array through indirect stores with no
  // lock: the storage base must be flagged via points-to attribution.
  Program Prog = compile(R"(
    var a[8];
    fn worker(i) {
      a[i] = i;
      return 0;
    }
    fn main() {
      var x = spawn worker(1);
      var y = spawn worker(2);
      join(x);
      join(y);
      return a[1];
    })");
  LintReport Report = runLocksetLint(Prog);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_TRUE(Report.Warnings[0].IsArray);
  EXPECT_EQ(Report.Warnings[0].Name, "a");
  EXPECT_EQ(Report.Warnings[0].Address, Prog.GlobalArrays[0].Base);
}

TEST(LintTest, JoinPublishesWorkerWritesHappensBefore) {
  // join() retires the spawned thread: after the join main is the only
  // thread running, so its unlocked writes to the worker's global are
  // not races. No lock appears anywhere in the program.
  Program Prog = compile(R"(
    var tally;
    fn worker(n) {
      for (var i = 0; i < n; i = i + 1) {
        tally = tally + i;
      }
      return tally;
    }
    fn main() {
      tally = 0;
      var t = spawn worker(8);
      var partial = join(t);
      tally = tally + partial;
      return tally;
    })");
  LintReport Report = runLocksetLint(Prog);
  EXPECT_TRUE(Report.Warnings.empty()) << Report.render();
}

TEST(LintTest, AccessBetweenSpawnAndJoinStillWarns) {
  // The happens-before edge is at the join, not the spawn: a write in
  // the window where the worker is live races with the worker's writes.
  Program Prog = compile(R"(
    var g;
    fn worker(n) {
      g = g + n;
      return 0;
    }
    fn main() {
      g = 0;
      var t = spawn worker(5);
      g = g + 1;
      var r = join(t);
      return g + r;
    })");
  LintReport Report = runLocksetLint(Prog);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_EQ(Report.Warnings[0].Name, "g");
}

TEST(LintTest, CalleeThatMaySpawnPinsTheLiveBound) {
  // Spawns hidden behind a call are accounted conservatively: once main
  // calls a may-spawn callee, the live-thread bound saturates and stays
  // saturated — a later join of a local handle cannot prove quiescence.
  Program Prog = compile(R"(
    var g;
    fn worker(n) {
      g = g + n;
      return 0;
    }
    fn helper() {
      var t = spawn worker(3);
      return join(t);
    }
    fn main() {
      g = 0;
      var r = helper();
      g = g + r;
      return g;
    })");
  LintReport Report = runLocksetLint(Prog);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_EQ(Report.Warnings[0].Name, "g");
}

// --- End to end: verified programs run clean. ---

TEST(AnalysisIntegration, VerifiedExamplesExecute) {
  Program Prog = compile(R"(
    var a[4];
    fn main() {
      for (var i = 0; i < 4; i = i + 1) { a[i] = i * i; }
      return a[3];
    })");
  optimizeProgram(Prog);
  ASSERT_TRUE(verifyProgram(Prog).ok());
  RunResult R = Machine(Prog, nullptr).run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ExitCode, 9);
}

// --- Value ranges. ---

TEST(IntervalTest, ArithmeticAndWrapSoundness) {
  Interval A = Interval::range(2, 5);
  Interval B = Interval::range(-1, 3);
  Interval Sum = intervalAdd(A, B);
  EXPECT_EQ(Sum.Lo, 1);
  EXPECT_EQ(Sum.Hi, 8);
  EXPECT_FALSE(Sum.Saturated);
  Interval Diff = intervalSub(A, B);
  EXPECT_EQ(Diff.Lo, -1);
  EXPECT_EQ(Diff.Hi, 6);
  Interval Prod = intervalMul(A, B);
  EXPECT_EQ(Prod.Lo, -5);
  EXPECT_EQ(Prod.Hi, 15);

  // A finite computation that can exceed int64 wraps on the machine:
  // top with the sticky Saturated flag (the lint's overflow signal).
  Interval Wrap = intervalAdd(Interval::constant(INT64_MAX - 1),
                              Interval::constant(2));
  EXPECT_TRUE(Wrap.isTop());
  EXPECT_TRUE(Wrap.Saturated);

  // The same overflow *through a widening infinity* is an artifact of
  // the sentinel encoding, not wrap evidence: plain top, so ordinary
  // widened loop counters never look like overflows.
  Interval Widened = Interval::range(Interval::NegInf, 0);
  Interval Dec = intervalSub(Widened, Interval::constant(1));
  EXPECT_TRUE(Dec.isTop());
  EXPECT_FALSE(Dec.Saturated);

  // Mod by a positive divisor re-normalizes: bounds below the divisor
  // and upstream saturation cleared.
  Interval Messy = intervalAdd(Wrap, Interval::constant(1));
  Interval M = intervalMod(Messy, Interval::constant(8));
  EXPECT_FALSE(M.Saturated);
  EXPECT_GE(M.Lo, -7);
  EXPECT_LE(M.Hi, 7);

  EXPECT_EQ(Interval::range(0, 3).str(), "[0,3]");
  EXPECT_EQ(Interval::top().str(), "[-inf,+inf]");
  EXPECT_TRUE(Interval::range(0, 3).within(4));
  EXPECT_FALSE(Interval::range(0, 4).within(4));
  EXPECT_FALSE(Interval::range(-1, 3).within(4));
}

size_t functionIndex(const Program &Prog, const std::string &Name) {
  for (size_t I = 0; I != Prog.Functions.size(); ++I)
    if (Prog.Functions[I].Name == Name)
      return I;
  ADD_FAILURE() << "no function " << Name;
  return 0;
}

TEST(RangeTest, LoopCountersRefineAndParamsJoinOverCallSites) {
  Program Prog = compile(R"(
    var a[8];
    fn get(i) {
      return a[i];
    }
    fn main() {
      var sum = 0;
      for (var i = 0; i < 8; i = i + 1) { sum = sum + get(i); }
      print(sum);
      return 0;
    })");
  RangeResult RR = computeRanges(Prog);
  EXPECT_GT(RR.Facts, 0u);

  // get's parameter joins over its only call site: the loop counter
  // under its guard, i in [0, 7].
  size_t Get = functionIndex(Prog, "get");
  const FunctionRanges &FR = RR.Functions[Get];
  EXPECT_TRUE(FR.Called);
  ASSERT_EQ(FR.Params.size(), 1u);
  EXPECT_EQ(FR.Params[0].Lo, 0);
  EXPECT_EQ(FR.Params[0].Hi, 7);

  // The a[i] site inherits the interprocedural bound.
  const Function &F = Prog.Functions[Get];
  for (size_t Pc = 0; Pc != F.Code.size(); ++Pc)
    if (F.Code[Pc].Opcode == Op::LoadIndirect) {
      const IndirectSiteRange *Site = RR.site(Get, Pc);
      ASSERT_NE(Site, nullptr);
      EXPECT_TRUE(Site->Index.within(8)) << Site->Index.str();
    }
}

// --- Frame-escape analysis. ---

TEST(EscapeTest, IndexOnlyFrameArrayNeverEscapes) {
  Program Prog = compile(R"(
    fn main() {
      var w[4];
      for (var i = 0; i < 4; i = i + 1) { w[i] = i; }
      return w[2];
    })");
  EscapeResult Esc = computeEscape(Prog);
  ASSERT_EQ(Esc.NeverEscaping.size(), 1u);
  EXPECT_EQ(Esc.NeverEscaping[0].Cells, 4u);
  EXPECT_NE(Esc.find(Esc.NeverEscaping[0].Fn, Esc.NeverEscaping[0].Slot),
            nullptr);
}

TEST(EscapeTest, PassingTheBaseToACalleeEscapes) {
  Program Prog = compile(R"(
    fn fill(p) {
      return p;
    }
    fn main() {
      var w[4];
      for (var i = 0; i < 4; i = i + 1) { w[i] = i; }
      var x = fill(w);
      return w[2];
    })");
  EscapeResult Esc = computeEscape(Prog);
  EXPECT_TRUE(Esc.NeverEscaping.empty());
}

// --- Bounds lint. ---

TEST(BoundsLintTest, FlagsDefiniteOutOfRangeIndex) {
  Program Prog = compile(R"(
    var a[4];
    fn main() {
      var i = rand(4) + 6;
      a[i] = 1;
      return 0;
    })");
  BoundsReport Report = runBoundsLint(Prog);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_NE(Report.Warnings[0].Message.find("out of bounds"),
            std::string::npos);
  EXPECT_NE(Report.render(Prog).find("bounds lint: 1 warning(s)"),
            std::string::npos);
}

TEST(BoundsLintTest, InRangeAndUnprovableAccessesStayQuiet) {
  // Definite-only by design: a loop-bounded index and an unconstrained
  // parameter index may both be fine, so neither warns.
  Program Prog = compile(R"(
    var a[4];
    fn get(i) {
      return a[i];
    }
    fn main() {
      var sum = 0;
      for (var i = 0; i < 4; i = i + 1) { sum = sum + a[i]; }
      return sum + get(3);
    })");
  BoundsReport Report = runBoundsLint(Prog);
  EXPECT_TRUE(Report.Warnings.empty()) << Report.render(Prog);
}

// --- Static growth estimator. ---

TEST(GrowthTest, LoopNestsCallsAndRecursion) {
  Program Prog = compile(R"(
    fn flat(n) {
      return n + 1;
    }
    fn linear(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) { s = s + i; }
      return s;
    }
    fn quad(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < n; j = j + 1) { s = s + j; }
      }
      return s;
    }
    fn caller(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) { s = s + linear(n); }
      return s;
    }
    fn rec(n) {
      if (n < 1) { return 0; }
      return rec(n - 1);
    }
    fn main() {
      return flat(4) + linear(4) + quad(4) + caller(4) + rec(4);
    })");
  std::map<RoutineId, unsigned> G = estimateGrowth(Prog);
  auto degree = [&](const char *Name) {
    return G.at(Prog.Functions[functionIndex(Prog, Name)].Id);
  };
  EXPECT_EQ(degree("flat"), 0u);
  EXPECT_EQ(degree("linear"), 1u);
  EXPECT_EQ(degree("quad"), 2u);
  EXPECT_EQ(degree("caller"), 2u); // loop depth 1 + linear's degree 1
  EXPECT_EQ(degree("rec"), 3u);    // recursion pins the cap

  EXPECT_STREQ(growthClassName(0), "O(1)");
  EXPECT_STREQ(growthClassName(1), "O(n)");
  EXPECT_STREQ(growthClassName(2), "O(n^2)");
  EXPECT_STREQ(growthClassName(3), "O(n^3+)");
  EXPECT_TRUE(growthAgrees(1, 1.3));
  EXPECT_TRUE(growthAgrees(2, 1.1)); // static is an upper bound
  EXPECT_FALSE(growthAgrees(1, 2.2));
}

// --- The covered-read certificate. ---

const char *CoveredReadSource = R"(
    fn work(n) {
      var acc = 0;
      for (var i = 0; i < n; i = i + 1) { acc = acc + i; }
      return acc;
    }
    fn main() {
      var w[4];
      var t = 0;
      while (t < 4) {
        w[t] = spawn work(16);
        t = t + 1;
      }
      var total = 0;
      t = 0;
      while (t < 4) {
        total = total + join(w[t]);
        t = t + 1;
      }
      print(total);
      return 0;
    })";

TEST(CoveredReadTest, FillLoopPlusReadLoopCertifies) {
  Program Prog = compile(CoveredReadSource);
  PointsToResult PT = computePointsTo(Prog);
  EscapeResult Esc = computeEscape(Prog);
  RangeResult RR = computeRanges(Prog);
  std::vector<std::pair<size_t, size_t>> Covered =
      coveredIndirectReads(Prog, PT, Esc, RR);
  ASSERT_EQ(Covered.size(), 1u);
  // The certified site is the join(w[t]) re-read in main.
  size_t Main = functionIndex(Prog, "main");
  EXPECT_EQ(Covered[0].first, Main);
  EXPECT_EQ(Prog.Functions[Main].Code[Covered[0].second].Opcode,
            Op::LoadIndirect);
}

TEST(CoveredReadTest, EscapingBaseKillsTheCertificate) {
  Program Prog = compile(R"(
    fn peek(p) {
      return p;
    }
    fn main() {
      var w[4];
      var t = 0;
      while (t < 4) {
        w[t] = t * t;
        t = t + 1;
      }
      var x = peek(w);
      var total = 0;
      t = 0;
      while (t < 4) {
        total = total + w[t];
        t = t + 1;
      }
      print(total);
      return 0;
    })");
  PointsToResult PT = computePointsTo(Prog);
  EscapeResult Esc = computeEscape(Prog);
  RangeResult RR = computeRanges(Prog);
  EXPECT_TRUE(coveredIndirectReads(Prog, PT, Esc, RR).empty());
}

// --- Verifier: exact-range index rejection. ---

TEST(VerifierTest, RejectsConstantFoldableOutOfBoundsIndex) {
  // The index never appears as a literal — the range analysis folds
  // 5 + 6 — yet the access is a definite fault, so the verifier
  // rejects it before and after optimization.
  const char *Source = "var arr[8]; fn main() { return arr[5 + 6]; }";
  Program Prog = compile(Source);
  VerifyResult R = verifyProgram(Prog);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.render(Prog).find("out of bounds"), std::string::npos);

  Program Opt = compile(Source);
  optimizeProgram(Opt);
  EXPECT_FALSE(verifyProgram(Opt).ok());

  // In-bounds constant stays accepted.
  Program Ok = compile("var arr[8]; fn main() { return arr[5 + 2]; }");
  EXPECT_TRUE(verifyProgram(Ok).ok());

  // A non-singleton out-of-range interval is the lint's domain, not a
  // verification failure: the program still runs.
  Program Fuzzy = compile(R"(
    var a[4];
    var pad[16];
    fn main() {
      var i = rand(4) + 6;
      a[i] = 1;
      return 0;
    })");
  EXPECT_TRUE(verifyProgram(Fuzzy).ok());
}

} // namespace
