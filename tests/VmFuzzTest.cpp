//===- tests/VmFuzzTest.cpp - Random guest program fuzzing ---------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Generates random well-formed guest programs (terminating by
// construction: bounded loops, acyclic call graphs, in-bounds array
// indexing, division guarded away from zero) and checks that across the
// whole stack:
//   - the frontend accepts them and the VM runs them without errors,
//   - execution is deterministic,
//   - the event stream satisfies the structural invariants,
//   - the timestamping profiler agrees with the naive oracle on the
//     generated (realistic, VM-shaped) traces — complementing the
//     synthetic-trace property tests with programs that have genuine
//     loops, data flow, and fork/join structure.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "core/NaiveProfiler.h"
#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "support/Format.h"
#include "support/Random.h"
#include "tools/ToolRegistry.h"
#include "vm/Compiler.h"
#include "vm/Optimizer.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

/// Emits random guest source. Every generated program terminates: loop
/// bounds are literals, the call graph only points to previously
/// emitted functions, and spawn appears only in main with a matching
/// join.
class ProgramFuzzer {
public:
  explicit ProgramFuzzer(uint64_t Seed, bool WithThreads = true)
      : R(Seed), WithThreads(WithThreads) {}

  std::string generate() {
    Out.clear();
    NumGlobals = 2 + R.nextBelow(4);
    GlobalArraySize = 8 + R.nextBelow(24);
    for (unsigned I = 0; I != NumGlobals; ++I)
      Out += formatString("var g%u;\n", I);
    Out += formatString("var arr[%u];\n\n", GlobalArraySize);

    NumFunctions = 2 + R.nextBelow(4);
    for (unsigned F = 0; F != NumFunctions; ++F)
      emitFunction(F);
    emitMain();
    return Out;
  }

private:
  /// An expression over the names in scope; depth-bounded.
  std::string expr(unsigned Depth, unsigned NumParams) {
    unsigned Choice = static_cast<unsigned>(R.nextBelow(Depth == 0 ? 3 : 6));
    switch (Choice) {
    case 0:
      return std::to_string(R.nextBelow(100));
    case 1:
      return formatString("g%u", static_cast<unsigned>(
                                     R.nextBelow(NumGlobals)));
    case 2:
      if (NumParams > 0)
        return formatString("p%u", static_cast<unsigned>(
                                       R.nextBelow(NumParams)));
      return std::to_string(R.nextBelow(100));
    case 3: {
      const char *Ops[] = {"+", "-", "*"};
      return formatString("(%s %s %s)",
                          expr(Depth - 1, NumParams).c_str(),
                          Ops[R.nextBelow(3)],
                          expr(Depth - 1, NumParams).c_str());
    }
    case 4:
      // Guarded division/modulo: the divisor is always in [1, 7].
      return formatString("(%s / (%s %% 7 + 7))",
                          expr(Depth - 1, NumParams).c_str(),
                          expr(Depth - 1, NumParams).c_str());
    default:
      return formatString("arr[%s]", indexExpr(NumParams).c_str());
    }
  }

  /// An always-in-bounds index into the global array.
  std::string indexExpr(unsigned NumParams) {
    return formatString("((%s %% %u + %u) %% %u)",
                        expr(1, NumParams).c_str(), GlobalArraySize,
                        GlobalArraySize, GlobalArraySize);
  }

  void emitStatement(unsigned FnIndex, unsigned NumParams,
                     unsigned Depth) {
    switch (R.nextBelow(Depth == 0 ? 4 : 6)) {
    case 0:
      Out += formatString("  g%u = %s;\n",
                          static_cast<unsigned>(R.nextBelow(NumGlobals)),
                          expr(2, NumParams).c_str());
      return;
    case 1:
      Out += formatString("  arr[%s] = %s;\n",
                          indexExpr(NumParams).c_str(),
                          expr(2, NumParams).c_str());
      return;
    case 2:
      Out += formatString("  acc = acc + %s;\n",
                          expr(2, NumParams).c_str());
      return;
    case 3:
      // Call a previously defined function (acyclic call graph).
      if (FnIndex > 0) {
        unsigned Callee = static_cast<unsigned>(R.nextBelow(FnIndex));
        Out += formatString("  acc = acc + f%u(%s, %s);\n", Callee,
                            expr(1, NumParams).c_str(),
                            expr(1, NumParams).c_str());
      } else {
        Out += "  acc = acc + 1;\n";
      }
      return;
    case 4: {
      // Bounded loop.
      unsigned Bound = 1 + static_cast<unsigned>(R.nextBelow(6));
      Out += formatString(
          "  for (var i%u = 0; i%u < %u; i%u = i%u + 1) {\n", Depth,
          Depth, Bound, Depth, Depth);
      unsigned Body = 1 + static_cast<unsigned>(R.nextBelow(2));
      for (unsigned I = 0; I != Body; ++I) {
        Out += "  ";
        emitStatement(FnIndex, NumParams, Depth - 1);
      }
      if (R.nextBool(0.2))
        Out += formatString("    if (i%u == %u) { break; }\n", Depth,
                            static_cast<unsigned>(R.nextBelow(Bound)));
      Out += "  }\n";
      return;
    }
    default:
      Out += formatString("  if (%s > %s) {\n  ",
                          expr(1, NumParams).c_str(),
                          expr(1, NumParams).c_str());
      emitStatement(FnIndex, NumParams, Depth - 1);
      if (R.nextBool(0.5)) {
        Out += "  } else {\n  ";
        emitStatement(FnIndex, NumParams, Depth - 1);
      }
      Out += "  }\n";
      return;
    }
  }

  void emitFunction(unsigned FnIndex) {
    Out += formatString("fn f%u(p0, p1) {\n  var acc = 0;\n", FnIndex);
    unsigned Statements = 2 + static_cast<unsigned>(R.nextBelow(5));
    for (unsigned I = 0; I != Statements; ++I)
      emitStatement(FnIndex, /*NumParams=*/2, /*Depth=*/2);
    Out += "  return acc;\n}\n\n";
  }

  void emitMain() {
    Out += "fn main() {\n  var acc = 0;\n";
    unsigned Spawns =
        WithThreads ? static_cast<unsigned>(R.nextBelow(4)) : 0;
    for (unsigned I = 0; I != Spawns; ++I)
      Out += formatString(
          "  var t%u = spawn f%u(%u, %u);\n", I,
          static_cast<unsigned>(R.nextBelow(NumFunctions)),
          static_cast<unsigned>(R.nextBelow(50)),
          static_cast<unsigned>(R.nextBelow(50)));
    unsigned Statements = 1 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned I = 0; I != Statements; ++I)
      emitStatement(NumFunctions, /*NumParams=*/0, /*Depth=*/2);
    for (unsigned I = 0; I != Spawns; ++I)
      Out += formatString("  acc = acc + join(t%u);\n", I);
    Out += "  print(acc);\n  return 0;\n}\n";
  }

  Rng R;
  bool WithThreads = true;
  std::string Out;
  unsigned NumGlobals = 0;
  unsigned NumFunctions = 0;
  unsigned GlobalArraySize = 0;
};

class VmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmFuzzTest, CompilesRunsDeterministically) {
  ProgramFuzzer Fuzzer(GetParam());
  std::string Source = Fuzzer.generate();

  MachineOptions Opts;
  Opts.MaxInstructions = 1u << 22;
  RunResult First = compileAndRun(Source, nullptr, Opts);
  ASSERT_TRUE(First.Ok) << "seed " << GetParam() << ":\n"
                        << First.Error << "\n--- source ---\n"
                        << Source;
  RunResult Second = compileAndRun(Source, nullptr, Opts);
  ASSERT_TRUE(Second.Ok);
  EXPECT_EQ(First.Output, Second.Output);
  EXPECT_EQ(First.Stats.Instructions, Second.Stats.Instructions);
}

TEST_P(VmFuzzTest, ProfilerAgreesWithOracleOnGeneratedPrograms) {
  ProgramFuzzer Fuzzer(GetParam());
  std::string Source = Fuzzer.generate();

  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();

  TrmsProfilerOptions FastOpts;
  FastOpts.KeepActivationLog = true;
  // A small counter limit keeps the renumbering path in the loop too.
  FastOpts.CounterLimit = 4096;
  TrmsProfiler Fast(FastOpts);
  NaiveProfilerOptions NaiveOpts;
  NaiveOpts.KeepActivationLog = true;
  NaiveTrmsProfiler Naive(NaiveOpts);

  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Fast);
  Dispatcher.addTool(&Naive);
  MachineOptions Opts;
  Opts.MaxInstructions = 1u << 22;
  Machine M(*Prog, &Dispatcher, Opts);
  RunResult Result = M.run();
  ASSERT_TRUE(Result.Ok) << Result.Error;

  ASSERT_EQ(Fast.database().log().size(), Naive.database().log().size());
  for (size_t I = 0; I != Fast.database().log().size(); ++I)
    ASSERT_EQ(Fast.database().log()[I], Naive.database().log()[I])
        << "seed " << GetParam() << " activation " << I;
}

TEST_P(VmFuzzTest, AllToolsSurviveGeneratedPrograms) {
  ProgramFuzzer Fuzzer(GetParam());
  std::string Source = Fuzzer.generate();

  std::vector<std::unique_ptr<Tool>> Tools;
  EventDispatcher Dispatcher;
  for (const std::string &Name : allToolNames()) {
    Tools.push_back(makeTool(Name));
    Dispatcher.addTool(Tools.back().get());
  }
  MachineOptions Opts;
  Opts.MaxInstructions = 1u << 22;
  RunResult Result = compileAndRun(Source, &Dispatcher, Opts);
  ASSERT_TRUE(Result.Ok) << Result.Error;
}

TEST_P(VmFuzzTest, OptimizerPreservesBehaviour) {
  // Single-threaded programs only: the racy multithreaded fuzz programs
  // are legitimately schedule-sensitive, and optimization shifts the
  // instruction-counted scheduler quanta.
  ProgramFuzzer Fuzzer(GetParam(), /*WithThreads=*/false);
  std::string Source = Fuzzer.generate();
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();

  MachineOptions Opts;
  Opts.MaxInstructions = 1u << 22;
  RunResult Plain = Machine(*Prog, nullptr, Opts).run();
  ASSERT_TRUE(Plain.Ok) << Plain.Error;
  optimizeProgram(*Prog);
  RunResult Optimized = Machine(*Prog, nullptr, Opts).run();
  ASSERT_TRUE(Optimized.Ok) << Optimized.Error << "\n--- source ---\n"
                            << Source;
  EXPECT_EQ(Plain.Output, Optimized.Output) << Source;
  EXPECT_EQ(Plain.Stats.BasicBlocks, Optimized.Stats.BasicBlocks);
  EXPECT_EQ(Plain.Stats.MemReads, Optimized.Stats.MemReads);
  EXPECT_EQ(Plain.Stats.MemWrites, Optimized.Stats.MemWrites);
  EXPECT_LE(Optimized.Stats.Instructions, Plain.Stats.Instructions);
}

TEST_P(VmFuzzTest, OptimizedProgramsVerifyClean) {
  // The verifier must accept everything the compile+optimize pipeline
  // can produce — including quiet marks on all five access opcodes.
  ProgramFuzzer Fuzzer(GetParam());
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Fuzzer.generate(), Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  ASSERT_TRUE(analysis::verifyProgram(*Prog).ok());
  optimizeProgram(*Prog);
  analysis::VerifyResult R = analysis::verifyProgram(*Prog);
  EXPECT_TRUE(R.ok()) << R.render(*Prog);
}

/// Applies one random corruption to a random instruction of \p Prog.
void mutateProgram(Program &Prog, Rng &R) {
  if (Prog.Functions.empty())
    return;
  Function &F =
      Prog.Functions[R.nextBelow(Prog.Functions.size())];
  if (F.Code.empty())
    return;
  Instr &I = F.Code[R.nextBelow(F.Code.size())];
  switch (R.nextBelow(4)) {
  case 0: // random (possibly invalid) opcode
    I.Opcode = static_cast<Op>(R.nextBelow(48));
    break;
  case 1: // operand A: wild value, often near the code bounds
    I.A = static_cast<int64_t>(R.nextBelow(2 * F.Code.size() + 8)) - 4;
    break;
  case 2: // operand B: stray marks and bogus argument counts
    I.B = static_cast<int64_t>(R.nextBelow(6)) - 1;
    break;
  default: // full random instruction
    I.Opcode = static_cast<Op>(R.nextBelow(48));
    I.A = static_cast<int64_t>(R.nextBelow(256)) - 128;
    I.B = static_cast<int64_t>(R.nextBelow(6)) - 1;
    break;
  }
}

TEST_P(VmFuzzTest, VerifierRejectsOrMachineRunsClean) {
  // The adversarial contract from the analysis layer: for ANY byte
  // sequence, either the verifier rejects it, or the Machine executes
  // it to a *defined* result (normal exit or runtimeError diagnostic —
  // never an interpreter assertion or UB). Mutate real compiled
  // programs so most mutants are near-valid, the hardest region.
  ProgramFuzzer Fuzzer(GetParam());
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Fuzzer.generate(), Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();

  Rng R(GetParam() * 7919 + 1);
  for (unsigned Trial = 0; Trial != 40; ++Trial) {
    Program Mutant = *Prog;
    unsigned Mutations = 1 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned M = 0; M != Mutations; ++M)
      mutateProgram(Mutant, R);
    if (!analysis::verifyProgram(Mutant).ok())
      continue;
    MachineOptions Opts;
    Opts.MaxInstructions = 1u << 16; // mutants may loop forever
    RunResult Result = Machine(Mutant, nullptr, Opts).run();
    // Ok or a defined runtime error are both acceptable; reaching this
    // line at all (no assert/crash) is the property under test.
    if (!Result.Ok)
      EXPECT_FALSE(Result.Error.empty());
  }
}

TEST(VmFuzzVerifier, MutationCampaignExercisesBothOutcomes) {
  // Sanity for the harness above: across one deterministic campaign the
  // verifier must both reject corrupt mutants and accept some (the
  // do-nothing mutations), or the property test is vacuous.
  ProgramFuzzer Fuzzer(5);
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Fuzzer.generate(), Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  Rng R(12345);
  unsigned Accepted = 0, Rejected = 0;
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    Program Mutant = *Prog;
    mutateProgram(Mutant, R);
    if (analysis::verifyProgram(Mutant).ok())
      ++Accepted;
    else
      ++Rejected;
  }
  EXPECT_GT(Rejected, 0u);
  EXPECT_GT(Accepted, 0u);
}

TEST(VmFuzzVerifier, RejectsConstantFoldableOutOfBoundsCampaign) {
  // Regression for the verifier's range tightening: an out-of-bounds
  // index hidden behind a constant-foldable expression (`5 + 6` rather
  // than a literal `11`) must be rejected whether or not the optimizer
  // folded it first, and staying in bounds must keep acceptance.
  DiagnosticEngine Diags;
  std::optional<Program> Bad = compileProgram(R"(
    var arr[8];
    fn main() {
      return arr[5 + 6];
    })",
                                              Diags);
  ASSERT_TRUE(Bad.has_value()) << Diags.render();
  EXPECT_FALSE(analysis::verifyProgram(*Bad).ok());
  optimizeProgram(*Bad);
  analysis::VerifyResult VR = analysis::verifyProgram(*Bad);
  EXPECT_FALSE(VR.ok());
  EXPECT_NE(VR.render(*Bad).find("out of bounds"), std::string::npos);

  std::optional<Program> Ok = compileProgram(R"(
    var arr[8];
    fn main() {
      return arr[5 + 2];
    })",
                                             Diags);
  ASSERT_TRUE(Ok.has_value()) << Diags.render();
  EXPECT_TRUE(analysis::verifyProgram(*Ok).ok());
  optimizeProgram(*Ok);
  EXPECT_TRUE(analysis::verifyProgram(*Ok).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
