//===- tests/CollectTest.cpp - Fleet collector tests ---------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Covers the fleet store's mergeable cost distributions, the rollup
// identity (concurrent multi-stream ingestion equals merging per-stream
// results serially, property-tested over synthetic traces), differential
// views (diff of a store against itself is empty; genuine growth changes
// are flagged), corrupt-stream isolation, and routine-filtered chunk
// skipping on v2 activity bitmaps.
//
//===----------------------------------------------------------------------===//

#include "collect/Collector.h"
#include "collect/FleetStore.h"

#include "instr/SymbolTable.h"
#include "trace/Synthetic.h"
#include "trace/TraceStream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>

#include <unistd.h>

using namespace isp;
using namespace isp::collect;

namespace {

//===----------------------------------------------------------------------===//
// CostQuantiles
//===----------------------------------------------------------------------===//

TEST(CostQuantiles, SingleValueIsExactAtEveryQuantile) {
  CostQuantiles Q;
  for (int I = 0; I != 10; ++I)
    Q.record(144);
  EXPECT_EQ(Q.count(), 10u);
  EXPECT_EQ(Q.sum(), 1440u);
  EXPECT_EQ(Q.min(), 144u);
  EXPECT_EQ(Q.max(), 144u);
  for (double P : {0.0, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(Q.percentile(P), 144u) << P;
}

TEST(CostQuantiles, PercentilesAreMonotoneAndBounded) {
  CostQuantiles Q;
  std::mt19937_64 Rng(99);
  uint64_t Lo = UINT64_MAX, Hi = 0;
  for (int I = 0; I != 5000; ++I) {
    uint64_t V = Rng() % 100000;
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
    Q.record(V);
  }
  uint64_t Prev = 0;
  for (double P : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    uint64_t V = Q.percentile(P);
    EXPECT_GE(V, Prev) << P;
    EXPECT_GE(V, Lo) << P;
    EXPECT_LE(V, Hi) << P;
    Prev = V;
  }
  EXPECT_EQ(CostQuantiles().percentile(0.5), 0u);
}

TEST(CostQuantiles, MergeEqualsInterleavedRecording) {
  CostQuantiles A, B, Both;
  std::mt19937_64 Rng(7);
  for (int I = 0; I != 2000; ++I) {
    uint64_t V = Rng() % 4096;
    (I % 2 ? A : B).record(V);
    Both.record(V);
  }
  CostQuantiles Merged = A;
  Merged.merge(B);
  EXPECT_EQ(Merged, Both);
  // Commutative: B.merge(A) gives the same distribution.
  CostQuantiles Reversed = B;
  Reversed.merge(A);
  EXPECT_EQ(Reversed, Both);
}

//===----------------------------------------------------------------------===//
// Stream fixtures
//===----------------------------------------------------------------------===//

std::string tempStream(const std::string &Name) {
  return ::testing::TempDir() + "isprof_collect_" + Name + ".strm";
}

/// Writes one synthetic trace as a chunked stream; returns its path.
std::string writeSyntheticStream(const std::string &Name, uint64_t Seed,
                                 uint64_t Operations = 3000,
                                 size_t ChunkBytes = 4096) {
  SyntheticTraceOptions Gen;
  Gen.NumOperations = Operations;
  Gen.Seed = Seed;
  std::string Path = tempStream(Name);
  TraceStreamWriter Writer;
  TraceStreamOptions Opts;
  Opts.ChunkBytes = ChunkBytes;
  EXPECT_TRUE(Writer.open(Path, {}, Opts)) << Writer.error();
  for (const EventRecord &E : generateSyntheticTrace(Gen))
    Writer.append(E);
  EXPECT_TRUE(Writer.close()) << Writer.error();
  return Path;
}

//===----------------------------------------------------------------------===//
// Rollup identity (the collector's core correctness property)
//===----------------------------------------------------------------------===//

TEST(FleetStore, ConcurrentIngestEqualsSerialPerStreamMerge) {
  std::vector<std::string> Paths;
  for (uint64_t Seed : {11u, 22u, 33u, 44u, 55u})
    Paths.push_back(
        writeSyntheticStream("identity_" + std::to_string(Seed), Seed));

  // Concurrent: one store, many worker threads.
  FleetStore Concurrent;
  CollectorOptions Opts;
  Opts.Workers = 4;
  Collector C(Opts, Concurrent);
  EXPECT_EQ(C.ingestFiles(Paths), Paths.size());
  EXPECT_TRUE(C.errors().empty());

  // Serial: one store per stream, folded together afterwards — and in
  // reversed order, so the identity also covers commutativity.
  FleetStore Serial;
  for (auto It = Paths.rbegin(); It != Paths.rend(); ++It) {
    FleetStore One;
    CollectorOptions SerialOpts;
    SerialOpts.Workers = 1;
    Collector SC(SerialOpts, One);
    EXPECT_EQ(SC.ingestFiles({*It}), 1u);
    Serial.merge(One);
  }

  EXPECT_EQ(Concurrent, Serial);
  EXPECT_GT(Concurrent.routineCount(), 0u);
  EXPECT_EQ(Concurrent.totalActivations(), Serial.totalActivations());

  for (const std::string &P : Paths)
    std::remove(P.c_str());
}

//===----------------------------------------------------------------------===//
// Differential views
//===----------------------------------------------------------------------===//

TEST(FleetDiff, SelfDiffIsEmpty) {
  std::string Path = writeSyntheticStream("selfdiff", 5);
  FleetStore A, B;
  CollectorOptions Opts;
  Collector CA(Opts, A), CB(Opts, B);
  EXPECT_EQ(CA.ingestFiles({Path}), 1u);
  EXPECT_EQ(CB.ingestFiles({Path}), 1u);
  std::remove(Path.c_str());

  EXPECT_EQ(A, B);
  std::vector<FleetRoutineDelta> Deltas = diffFleetStores(A, B);
  EXPECT_TRUE(Deltas.empty());
  EXPECT_FALSE(hasFleetRegressions(Deltas));
  EXPECT_NE(renderFleetDiff(Deltas).find("0 routine(s) differ"),
            std::string::npos);
}

TEST(FleetDiff, FlagsCostGrowthAndMissingRoutines) {
  // Hand-built stores: routine "hot" triples its mean cost at every
  // shared rms value; "gone" exists only in the baseline.
  SymbolTable Syms;
  uint64_t Hot = Syms.intern("hot");
  uint64_t Gone = Syms.intern("gone");

  auto makeDb = [&](uint64_t CostScale, bool WithGone) {
    ProfileDatabase Db;
    Db.setKeepLog(true);
    for (uint64_t Rms : {4u, 8u, 16u}) {
      ActivationRecord R;
      R.Tid = 0;
      R.Rtn = Hot;
      R.Rms = Rms;
      R.Trms = Rms;
      R.Cost = Rms * CostScale;
      Db.recordActivation(R);
    }
    if (WithGone) {
      ActivationRecord R;
      R.Tid = 0;
      R.Rtn = Gone;
      R.Rms = 2;
      R.Trms = 2;
      R.Cost = 10;
      Db.recordActivation(R);
    }
    return Db;
  };

  FleetStore Base, Cand;
  ProfileDatabase BaseDb = makeDb(10, /*WithGone=*/true);
  ProfileDatabase CandDb = makeDb(30, /*WithGone=*/false);
  Base.mergeDatabase("prog", BaseDb, Syms);
  Cand.mergeDatabase("prog", CandDb, Syms);

  std::vector<FleetRoutineDelta> Deltas = diffFleetStores(Base, Cand);
  ASSERT_EQ(Deltas.size(), 2u);

  bool SawHot = false, SawGone = false;
  for (const FleetRoutineDelta &D : Deltas) {
    if (D.Routine == "hot") {
      SawHot = true;
      EXPECT_FALSE(D.OnlyInBase);
      EXPECT_NEAR(D.CostRatio, 3.0, 1e-6);
      EXPECT_EQ(D.SharedRmsValues, 3u);
    }
    if (D.Routine == "gone") {
      SawGone = true;
      EXPECT_TRUE(D.OnlyInBase);
    }
  }
  EXPECT_TRUE(SawHot);
  EXPECT_TRUE(SawGone);
  EXPECT_TRUE(hasFleetRegressions(Deltas));
}

//===----------------------------------------------------------------------===//
// Corrupt-stream isolation
//===----------------------------------------------------------------------===//

TEST(Collector, CorruptStreamIsReportedAndDoesNotPoisonTheRollup) {
  std::vector<std::string> Good;
  for (uint64_t Seed : {3u, 6u})
    Good.push_back(
        writeSyntheticStream("corrupt_good_" + std::to_string(Seed), Seed));

  // Truncate a copy of a valid stream mid-chunk: the reader reports the
  // failing chunk, the collector names the file, and the rollup equals
  // ingesting only the good streams.
  std::string Bad = writeSyntheticStream("corrupt_bad", 9);
  {
    FILE *F = std::fopen(Bad.c_str(), "r+");
    ASSERT_NE(F, nullptr);
    std::fseek(F, 0, SEEK_END);
    long Size = std::ftell(F);
    ASSERT_GT(Size, 512);
    ASSERT_EQ(::truncate(Bad.c_str(), Size / 2), 0);
    std::fclose(F);
  }

  std::vector<std::string> All = Good;
  All.insert(All.begin() + 1, Bad); // corrupt one among N

  FleetStore WithBad;
  CollectorOptions Opts;
  Opts.Workers = 3;
  Collector C(Opts, WithBad);
  EXPECT_EQ(C.ingestFiles(All), Good.size());
  EXPECT_EQ(C.totals().StreamsFailed, 1u);
  ASSERT_EQ(C.errors().size(), 1u);
  EXPECT_EQ(C.errors()[0].File, Bad);
  EXPECT_FALSE(C.errors()[0].Message.empty());

  FleetStore GoodOnly;
  Collector CG(Opts, GoodOnly);
  EXPECT_EQ(CG.ingestFiles(Good), Good.size());
  EXPECT_EQ(WithBad, GoodOnly);

  for (const std::string &P : All)
    std::remove(P.c_str());
}

//===----------------------------------------------------------------------===//
// Routine-filtered chunk skipping
//===----------------------------------------------------------------------===//

/// A phase-structured stream: routine 1 ("setup") runs once inside the
/// root frame, then routine 2 ("work") dominates many chunks. With a
/// filter on "setup", every post-setup chunk's activity bitmap proves it
/// skippable.
std::string writePhasedStream(const std::string &Name, unsigned WorkCalls,
                              uint64_t *SetupRms, uint64_t *SetupCost) {
  std::vector<std::pair<RoutineId, std::string>> Routines = {
      {0, "root"}, {1, "setup"}, {2, "work"}};
  std::string Path = tempStream(Name);
  TraceStreamWriter Writer;
  TraceStreamOptions Opts;
  Opts.ChunkBytes = 1024;
  EXPECT_TRUE(Writer.open(Path, Routines, Opts)) << Writer.error();

  uint64_t T = 1;
  auto emit = [&](EventKind K, uint64_t Arg0, uint64_t Arg1 = 0) {
    EventRecord E;
    E.Kind = K;
    E.Tid = 0;
    E.Time = T++;
    E.Arg0 = Arg0;
    E.Arg1 = Arg1;
    Writer.append(E);
  };

  emit(EventKind::ThreadStart, 0);
  emit(EventKind::Call, 0); // root
  emit(EventKind::Call, 1); // setup: 3 distinct reads, 2 basic blocks
  emit(EventKind::BasicBlock, 0, 1);
  emit(EventKind::Read, 100, 1);
  emit(EventKind::Read, 101, 1);
  emit(EventKind::Read, 102, 1);
  emit(EventKind::BasicBlock, 0, 1);
  emit(EventKind::Return, 1);
  *SetupRms = 3;
  *SetupCost = 2;
  for (unsigned I = 0; I != WorkCalls; ++I) {
    emit(EventKind::Call, 2);
    for (int A = 0; A != 40; ++A) {
      emit(EventKind::BasicBlock, 0, 1);
      emit(EventKind::Read, 200 + (A % 16), 1);
      emit(EventKind::Write, 300 + (A % 8), 1);
    }
    emit(EventKind::Return, 2);
  }
  emit(EventKind::Return, 0);
  emit(EventKind::ThreadEnd, 0);
  EXPECT_TRUE(Writer.close()) << Writer.error();
  return Path;
}

TEST(Collector, RoutineFilterSkipsProvablyExcludedChunks) {
  uint64_t SetupRms = 0, SetupCost = 0;
  std::string Path =
      writePhasedStream("skip", /*WorkCalls=*/200, &SetupRms, &SetupCost);

  FleetStore Filtered;
  CollectorOptions Opts;
  Opts.RoutineFilter = {"setup"};
  Collector C(Opts, Filtered);
  ASSERT_EQ(C.ingestFiles({Path}), 1u);
  EXPECT_GT(C.totals().ChunksSkipped, 0u);
  EXPECT_GT(C.totals().ChunksRead, 0u);

  // The filtered rollup holds exactly the setup activation, and its
  // record is exact: skipping never drops anything between a filtered
  // Call and its Return.
  ASSERT_EQ(Filtered.routineCount(), 1u);
  const auto &[Key, Rollup] = *Filtered.rollups().begin();
  EXPECT_EQ(Key.Routine, "setup");
  EXPECT_EQ(Rollup.Activations, 1u);
  EXPECT_EQ(Rollup.SumRms, SetupRms);
  EXPECT_EQ(Rollup.SumCost, SetupCost);

  // An unfiltered ingest decodes everything and agrees on setup.
  FleetStore Full;
  CollectorOptions NoFilter;
  Collector CF(NoFilter, Full);
  ASSERT_EQ(CF.ingestFiles({Path}), 1u);
  EXPECT_EQ(CF.totals().ChunksSkipped, 0u);
  FleetStore::Key SetupKey{Key.Program, "setup"};
  ASSERT_TRUE(Full.rollups().count(SetupKey));
  EXPECT_EQ(Full.rollups().at(SetupKey), Rollup);

  std::remove(Path.c_str());
}

/// A stream whose inducing write sits in a chunk the legacy skip rule
/// drops: routine 1 ("probe", the filter target) reads cell X in two
/// well-separated activations; between them a KernelWrite to X lands in
/// a chunk full of unrelated "noise" activity (no probe call, no probe
/// activation in flight). Dropping that chunk loses the kernel write
/// timestamp, so probe's second read of X degrades from an induced
/// external first-access to a plain one — the trms undercount the v3
/// written-shard masks exist to close.
std::string writeInducedWriteStream(const std::string &Name,
                                    unsigned Version) {
  constexpr uint64_t X = 5000; // shard key 9 — disjoint from noise below
  std::vector<std::pair<RoutineId, std::string>> Routines = {
      {0, "root"}, {1, "probe"}, {2, "noise"}};
  std::string Path = tempStream(Name);
  TraceStreamWriter Writer;
  TraceStreamOptions Opts;
  Opts.ChunkBytes = 1024;
  Opts.FormatVersion = Version;
  EXPECT_TRUE(Writer.open(Path, Routines, Opts)) << Writer.error();

  uint64_t T = 1;
  auto emit = [&](EventKind K, uint64_t Arg0, uint64_t Arg1 = 0) {
    EventRecord E;
    E.Kind = K;
    E.Tid = 0;
    E.Time = T++;
    E.Arg0 = Arg0;
    E.Arg1 = Arg1;
    Writer.append(E);
  };
  auto noiseBurst = [&](unsigned Calls) {
    for (unsigned I = 0; I != Calls; ++I) {
      emit(EventKind::Call, 2);
      for (int A = 0; A != 40; ++A) {
        emit(EventKind::BasicBlock, 0, 1);
        emit(EventKind::Read, 150000 + (A % 16), 1);  // shard key 37
        emit(EventKind::Write, 160000 + (A % 8), 1);  // shard key 56
      }
      emit(EventKind::Return, 2);
    }
  };
  auto probeActivation = [&] {
    emit(EventKind::Call, 1);
    emit(EventKind::BasicBlock, 0, 1);
    emit(EventKind::Read, X, 1);
    emit(EventKind::Return, 1);
  };

  emit(EventKind::ThreadStart, 0);
  emit(EventKind::Call, 0);
  probeActivation();
  noiseBurst(10); // several full chunks with no probe call
  emit(EventKind::KernelWrite, X, 1); // the inducing write
  noiseBurst(10);
  probeActivation();
  noiseBurst(10); // tail chunks: provably irrelevant even with masks
  emit(EventKind::Return, 0);
  emit(EventKind::ThreadEnd, 0);
  EXPECT_TRUE(Writer.close()) << Writer.error();
  return Path;
}

TEST(Collector, WrittenMasksKeepInducedInputExactUnderFiltering) {
  std::string Path = writeInducedWriteStream("induced_v3", /*Version=*/3);

  // Ground truth: decode everything.
  FleetStore Full;
  Collector CF(CollectorOptions{}, Full);
  ASSERT_EQ(CF.ingestFiles({Path}), 1u);
  FleetStore::Key ProbeKey{Full.rollups().begin()->first.Program, "probe"};
  ASSERT_TRUE(Full.rollups().count(ProbeKey));
  const RoutineRollup &Truth = Full.rollups().at(ProbeKey);
  ASSERT_EQ(Truth.Activations, 2u);
  ASSERT_EQ(Truth.InducedExternal, 1u)
      << "the kernel write makes probe's second read an induced access";

  // Filtered ingest on the v3 stream: the inducing chunk's written mask
  // intersects the later probe chunk's shard activity, so it is
  // decoded; the post-probe tail still skips. The probe rollup must be
  // exact — including the induced classification.
  FleetStore Filtered;
  CollectorOptions FilterOpts;
  FilterOpts.RoutineFilter = {"probe"};
  Collector C(FilterOpts, Filtered);
  ASSERT_EQ(C.ingestFiles({Path}), 1u);
  EXPECT_GT(C.totals().ChunksSkipped, 0u)
      << "masks must not degrade to decoding everything";
  ASSERT_EQ(Filtered.routineCount(), 1u);
  EXPECT_EQ(Filtered.rollups().at(ProbeKey), Truth);

  std::remove(Path.c_str());
}

TEST(Collector, LegacyV2StreamsStillSkipAndDocumentTheUndercount) {
  // The same trace written at v2 has no written masks: the legacy rule
  // drops the inducing chunk, and the induced-external unit silently
  // degrades to a plain first-access. This pins down the exact failure
  // the v3 masks close (total trms stays right — only the induced
  // classification is at risk under rule (a)+(b)).
  std::string Path = writeInducedWriteStream("induced_v2", /*Version=*/2);

  FleetStore Full;
  Collector CF(CollectorOptions{}, Full);
  ASSERT_EQ(CF.ingestFiles({Path}), 1u);
  FleetStore::Key ProbeKey{Full.rollups().begin()->first.Program, "probe"};
  const RoutineRollup &Truth = Full.rollups().at(ProbeKey);
  ASSERT_EQ(Truth.InducedExternal, 1u);

  FleetStore Filtered;
  CollectorOptions FilterOpts;
  FilterOpts.RoutineFilter = {"probe"};
  Collector C(FilterOpts, Filtered);
  ASSERT_EQ(C.ingestFiles({Path}), 1u);
  EXPECT_GT(C.totals().ChunksSkipped, 0u);
  const RoutineRollup &Legacy = Filtered.rollups().at(ProbeKey);
  EXPECT_EQ(Legacy.Activations, Truth.Activations);
  EXPECT_EQ(Legacy.SumRms, Truth.SumRms);
  EXPECT_EQ(Legacy.SumTrms, Truth.SumTrms);
  EXPECT_EQ(Legacy.InducedExternal, 0u)
      << "legacy streams lose the induced classification when the "
         "inducing write's chunk is skipped";

  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Rendering and spool scanning
//===----------------------------------------------------------------------===//

TEST(FleetStore, RenderRollupAndCurveNameTheRoutines) {
  SymbolTable Syms;
  uint64_t F = Syms.intern("fib");
  ProfileDatabase Db;
  Db.setKeepLog(true);
  for (uint64_t Rms : {2u, 4u, 8u}) {
    ActivationRecord R;
    R.Tid = 0;
    R.Rtn = F;
    R.Rms = Rms;
    R.Trms = Rms;
    R.Cost = Rms * Rms;
    Db.recordActivation(R);
  }
  FleetStore Store;
  Store.mergeDatabase("demo", Db, Syms);

  std::string Rollup = Store.renderRollup(5);
  EXPECT_NE(Rollup.find("fleet rollup: 1 routine(s)"), std::string::npos);
  EXPECT_NE(Rollup.find("fib"), std::string::npos);

  std::string Curve = Store.renderCurve("fib");
  EXPECT_NE(Curve.find("curve for 'fib'"), std::string::npos);
  EXPECT_NE(Store.renderCurve("nope").find("no routine 'nope'"),
            std::string::npos);
}

TEST(Collector, SpoolScanFindsOnlyStreamFilesSorted) {
  std::string Dir = ::testing::TempDir() + "isprof_spool_scan";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  SyntheticTraceOptions Gen;
  Gen.NumOperations = 200;
  for (const char *Name : {"b.strm", "a.strm"}) {
    TraceStreamWriter Writer;
    ASSERT_TRUE(Writer.open(Dir + "/" + Name, {}, {}));
    for (const EventRecord &E : generateSyntheticTrace(Gen))
      Writer.append(E);
    ASSERT_TRUE(Writer.close());
  }
  // A non-stream file is ignored (magic check, not extension).
  {
    FILE *F = std::fopen((Dir + "/notes.strm").c_str(), "w");
    std::fputs("not a stream\n", F);
    std::fclose(F);
  }

  std::string Error;
  std::vector<std::string> Found = scanSpoolDir(Dir, &Error);
  EXPECT_TRUE(Error.empty());
  ASSERT_EQ(Found.size(), 2u);
  EXPECT_EQ(Found[0], Dir + "/a.strm");
  EXPECT_EQ(Found[1], Dir + "/b.strm");

  EXPECT_TRUE(scanSpoolDir(Dir + "/missing", &Error).empty());
  EXPECT_FALSE(Error.empty());

  std::filesystem::remove_all(Dir);
}

} // namespace
