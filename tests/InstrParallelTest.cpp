//===- tests/InstrParallelTest.cpp - Parallel tool fan-out ----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The dispatcher's parallel tool fan-out (setParallelWorkers /
// --parallel-tools) promises three things, and these tests hold it to
// them: (1) every tool observes exactly the batch sequence serial
// delivery would give it, so reports and profiles are byte-identical;
// (2) each tool's callbacks run on one fixed thread chosen by its
// declared affinity — DispatchThread on the enqueue thread, worker
// tools on exactly one worker; (3) finish() is a real join: after it
// returns, every event has been consumed and the compaction identity
// holds on the dispatcher's plain counters.
//
//===----------------------------------------------------------------------===//

#include "core/RmsProfiler.h"
#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "instr/SpscQueue.h"
#include "tools/NulTool.h"
#include "tools/ToolRegistry.h"
#include "trace/Synthetic.h"
#include "vm/Compiler.h"
#include "vm/Machine.h"
#include "workloads/Runner.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

using namespace isp;

namespace {

std::vector<EventRecord> makeTrace(uint64_t Operations, uint64_t Seed,
                             unsigned Threads = 4) {
  SyntheticTraceOptions Gen;
  Gen.NumThreads = Threads;
  Gen.NumOperations = Operations;
  Gen.Seed = Seed;
  return generateSyntheticTrace(Gen);
}

/// Runs \p Events through a dispatcher over freshly created \p ToolNames
/// and returns each tool's rendered report. \p Workers == 0 keeps serial
/// delivery; > 0 requests parallel fan-out.
std::vector<std::string> reportsForRun(const std::vector<EventRecord> &Events,
                                       const std::vector<std::string> &ToolNames,
                                       unsigned Workers,
                                       size_t BatchCapacity = 0) {
  std::vector<std::unique_ptr<Tool>> Tools;
  for (const std::string &Name : ToolNames) {
    Tools.push_back(makeTool(Name));
    EXPECT_NE(Tools.back(), nullptr) << Name;
  }
  EventDispatcher Dispatcher;
  for (auto &T : Tools)
    Dispatcher.addTool(T.get());
  if (BatchCapacity != 0) {
    EXPECT_TRUE(Dispatcher.setBatchCapacity(BatchCapacity));
  }
  if (Workers > 0)
    Dispatcher.setParallelWorkers(Workers);
  Dispatcher.start(nullptr);
  for (const EventRecord &E : Events)
    Dispatcher.enqueue(E);
  Dispatcher.finish();
  std::vector<std::string> Reports;
  for (auto &T : Tools)
    Reports.push_back(renderToolReport(*T, nullptr));
  return Reports;
}

/// Records every callback's payload and the thread it ran on.
class RecordingTool : public Tool {
public:
  explicit RecordingTool(ToolAffinity A) : Affinity(A) {}

  ToolAffinity threadAffinity() const override { return Affinity; }
  std::string name() const override { return "recording"; }

  void onThreadStart(ThreadId Tid, ThreadId Parent) override {
    note('S', Tid, Parent, 0);
  }
  void onThreadEnd(ThreadId Tid) override { note('E', Tid, 0, 0); }
  void onCall(ThreadId Tid, RoutineId Rtn) override {
    note('C', Tid, Rtn, 0);
  }
  void onReturn(ThreadId Tid, RoutineId Rtn) override {
    note('R', Tid, Rtn, 0);
  }
  void onBasicBlock(ThreadId Tid, uint64_t Count) override {
    note('B', Tid, Count, 0);
  }
  void onRead(ThreadId Tid, Addr A, uint64_t Cells) override {
    note('r', Tid, A, Cells);
  }
  void onWrite(ThreadId Tid, Addr A, uint64_t Cells) override {
    note('w', Tid, A, Cells);
  }
  void onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) override {
    note('k', Tid, A, Cells);
  }
  void onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) override {
    note('K', Tid, A, Cells);
  }

  using Entry = std::tuple<char, uint64_t, uint64_t, uint64_t>;
  const std::vector<Entry> &entries() const { return Entries; }
  const std::set<std::thread::id> &threads() const { return Threads; }

private:
  void note(char Kind, uint64_t A, uint64_t B, uint64_t C) {
    Entries.emplace_back(Kind, A, B, C);
    Threads.insert(std::this_thread::get_id());
  }

  ToolAffinity Affinity;
  std::vector<Entry> Entries;
  std::set<std::thread::id> Threads;
};

/// An AnyWorker tool that naps every 256 reads — slow enough for the
/// publisher to lap the batch ring and hit backpressure.
class SlowTool : public Tool {
public:
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::AnyWorker;
  }
  std::string name() const override { return "slow"; }
  void onRead(ThreadId, Addr, uint64_t) override {
    if (++Reads % 256 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  uint64_t reads() const { return Reads; }

private:
  uint64_t Reads = 0;
};

//===----------------------------------------------------------------------===//
// Affinity declarations
//===----------------------------------------------------------------------===//

TEST(ParallelFanout, RegistryToolsDeclareExpectedAffinities) {
  // The profiler family shares global shadow state across instances, so
  // it must stay co-scheduled on one worker.
  for (const char *Name : {"aprof-trms", "aprof-rms", "aprof-trms-naive"}) {
    std::unique_ptr<Tool> T = makeTool(Name);
    ASSERT_NE(T, nullptr) << Name;
    EXPECT_EQ(T->threadAffinity(), ToolAffinity::CoScheduled) << Name;
  }
  // Instance-private tools may take any fixed worker.
  for (const char *Name :
       {"nulgrind", "memcheck", "callgrind", "helgrind", "drd", "cct"}) {
    std::unique_ptr<Tool> T = makeTool(Name);
    ASSERT_NE(T, nullptr) << Name;
    EXPECT_EQ(T->threadAffinity(), ToolAffinity::AnyWorker) << Name;
  }
  // The base class stays conservative for unaudited tools.
  RecordingTool Base(ToolAffinity::DispatchThread);
  EXPECT_EQ(static_cast<Tool &>(Base).threadAffinity(),
            ToolAffinity::DispatchThread);
}

//===----------------------------------------------------------------------===//
// Parallel == serial, observationally
//===----------------------------------------------------------------------===//

TEST(ParallelFanout, ReportsMatchSerialOnSyntheticTrace) {
  const std::vector<std::string> ToolNames = {"aprof-trms", "aprof-rms",
                                              "memcheck", "callgrind"};
  std::vector<EventRecord> Events = makeTrace(20000, 31);
  std::vector<std::string> Serial = reportsForRun(Events, ToolNames, 0);
  for (unsigned Workers : {1u, 2u, 4u}) {
    std::vector<std::string> Parallel =
        reportsForRun(Events, ToolNames, Workers);
    ASSERT_EQ(Parallel.size(), Serial.size());
    for (size_t I = 0; I != Serial.size(); ++I)
      EXPECT_EQ(Parallel[I], Serial[I])
          << ToolNames[I] << " diverged with " << Workers << " workers";
  }
}

TEST(ParallelFanout, ReportsMatchSerialOnCompiledWorkload) {
  const WorkloadInfo *W = findWorkload("md");
  ASSERT_NE(W, nullptr);
  WorkloadParams Params;
  Params.Threads = 2;
  Params.Size = 12;
  std::optional<Program> Prog = compileWorkload(*W, Params);
  ASSERT_TRUE(Prog.has_value());

  const std::vector<std::string> ToolNames = {"aprof-trms", "aprof-rms",
                                              "memcheck", "callgrind"};
  auto RunOnce = [&](unsigned Workers) {
    std::vector<std::unique_ptr<Tool>> Tools;
    for (const std::string &Name : ToolNames)
      Tools.push_back(makeTool(Name));
    EventDispatcher Dispatcher;
    for (auto &T : Tools)
      Dispatcher.addTool(T.get());
    if (Workers > 0)
      Dispatcher.setParallelWorkers(Workers);
    Machine M(*Prog, &Dispatcher, MachineOptions());
    RunResult R = M.run();
    EXPECT_TRUE(R.Ok) << R.Error;
    std::vector<std::string> Reports;
    for (auto &T : Tools)
      Reports.push_back(renderToolReport(*T, &Prog->Symbols));
    return Reports;
  };

  std::vector<std::string> Serial = RunOnce(0);
  std::vector<std::string> Parallel = RunOnce(2);
  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t I = 0; I != Serial.size(); ++I)
    EXPECT_EQ(Parallel[I], Serial[I]) << ToolNames[I];
}

TEST(ParallelFanout, CallbackOrderAndContentMatchSerial) {
  std::vector<EventRecord> Events = makeTrace(8000, 32);
  RecordingTool Serial(ToolAffinity::AnyWorker);
  {
    EventDispatcher D;
    D.addTool(&Serial);
    D.start(nullptr);
    for (const EventRecord &E : Events)
      D.enqueue(E);
    D.finish();
  }
  RecordingTool Parallel(ToolAffinity::AnyWorker);
  {
    EventDispatcher D;
    D.addTool(&Parallel);
    D.setParallelWorkers(2);
    D.start(nullptr);
    EXPECT_TRUE(D.parallelActive());
    for (const EventRecord &E : Events)
      D.enqueue(E);
    D.finish();
    EXPECT_FALSE(D.parallelActive());
  }
  EXPECT_EQ(Parallel.entries(), Serial.entries());
}

TEST(ParallelFanout, DispatchPathMatchesSerial) {
  // dispatch() delivers per-event; in parallel mode each event becomes
  // its own published batch. Content and order must not change.
  std::vector<EventRecord> Events = makeTrace(2000, 33);
  auto RunOnce = [&](unsigned Workers) {
    RecordingTool T(ToolAffinity::AnyWorker);
    EventDispatcher D;
    D.addTool(&T);
    if (Workers > 0)
      D.setParallelWorkers(Workers);
    D.start(nullptr);
    for (const EventRecord &E : Events)
      D.dispatch(E);
    D.finish();
    return T.entries();
  };
  EXPECT_EQ(RunOnce(2), RunOnce(0));
}

//===----------------------------------------------------------------------===//
// Thread placement
//===----------------------------------------------------------------------===//

TEST(ParallelFanout, DispatchThreadToolStaysOnEnqueueThread) {
  RecordingTool Pinned(ToolAffinity::DispatchThread);
  NulTool Spread; // AnyWorker, so parallel mode actually engages
  EventDispatcher D;
  D.addTool(&Pinned);
  D.addTool(&Spread);
  D.setParallelWorkers(2);
  D.start(nullptr);
  ASSERT_TRUE(D.parallelActive());
  for (const EventRecord &E : makeTrace(4000, 34))
    D.enqueue(E);
  D.finish();
  ASSERT_EQ(Pinned.threads().size(), 1u);
  EXPECT_EQ(*Pinned.threads().begin(), std::this_thread::get_id());
}

TEST(ParallelFanout, AnyWorkerToolRunsOnOneWorkerThread) {
  RecordingTool Spread(ToolAffinity::AnyWorker);
  EventDispatcher D;
  D.addTool(&Spread);
  D.setParallelWorkers(2);
  D.start(nullptr);
  ASSERT_TRUE(D.parallelActive());
  for (const EventRecord &E : makeTrace(4000, 35))
    D.enqueue(E);
  D.finish();
  // One fixed consumer thread, and never the enqueue thread.
  ASSERT_EQ(Spread.threads().size(), 1u);
  EXPECT_NE(*Spread.threads().begin(), std::this_thread::get_id());
}

TEST(ParallelFanout, WorkerCountClampsToEligibleTools) {
  // One spreadable tool can use at most one worker, however many were
  // requested.
  NulTool T;
  EventDispatcher D;
  D.addTool(&T);
  D.setParallelWorkers(64);
  D.start(nullptr);
  ASSERT_TRUE(D.parallelActive());
  EXPECT_EQ(D.parallelWorkersUsed(), 1u);
  D.finish();
}

TEST(ParallelFanout, StaysSerialWithOnlyDispatchThreadTools) {
  RecordingTool Pinned(ToolAffinity::DispatchThread);
  EventDispatcher D;
  D.addTool(&Pinned);
  D.setParallelWorkers(4);
  D.start(nullptr);
  EXPECT_FALSE(D.parallelActive());
  EXPECT_EQ(D.parallelWorkersUsed(), 0u);
  for (const EventRecord &E : makeTrace(1000, 36))
    D.enqueue(E);
  D.finish();
  ASSERT_EQ(Pinned.threads().size(), 1u);
  EXPECT_EQ(*Pinned.threads().begin(), std::this_thread::get_id());
}

//===----------------------------------------------------------------------===//
// Join, counters, backpressure
//===----------------------------------------------------------------------===//

TEST(ParallelFanout, CompactionIdentityHoldsAfterFinish) {
  std::vector<EventRecord> Events = makeTrace(12000, 37);
  NulTool A;
  auto B = makeTool("memcheck");
  EventDispatcher D;
  D.addTool(&A);
  D.addTool(B.get());
  D.setParallelWorkers(2);
  D.start(nullptr);
  for (const EventRecord &E : Events)
    D.enqueue(E);
  D.finish();
  EXPECT_EQ(D.enqueuedEvents(),
            D.deliveredEvents() + D.accessMerges() + D.bbFolds());
  EXPECT_EQ(D.enqueuedEvents(), Events.size());
}

TEST(ParallelFanout, BackpressureBoundsThePublisher) {
  SlowTool Slow;
  EventDispatcher D;
  D.addTool(&Slow);
  D.setParallelWorkers(1);
  D.start(nullptr);
  ASSERT_TRUE(D.parallelActive());
  // Dense, non-mergeable reads: every 256 fill a batch, and the slow
  // consumer drains far behind the publisher's pace.
  const uint64_t NumReads = 24 * EventDispatcher::DefaultBatchCapacity;
  for (uint64_t I = 0; I != NumReads; ++I)
    D.enqueue(EventRecord::read(0, I + 1, 8 * I));
  D.finish();
  EXPECT_GT(D.backpressureBlocks(), 0u);
  EXPECT_LE(D.maxQueueDepth(), D.ringSlots());
  EXPECT_GE(D.ringSlots(), EventDispatcher::InitialRingSlots);
  EXPECT_LE(D.ringSlots(), EventDispatcher::MaxRingSlots);
  // The join delivered everything despite the blocking.
  EXPECT_EQ(Slow.reads(), NumReads);
}

TEST(ParallelFanout, RingGrowsUnderSustainedBackpressure) {
  // A publisher lapping a slow consumer for long enough must trip the
  // adaptive growth: repeated backpressure doubles the ring (up to
  // MaxRingSlots), trading bounded extra memory for fewer stalls —
  // without losing or reordering a single event.
  SlowTool Slow;
  EventDispatcher D;
  D.addTool(&Slow);
  D.setParallelWorkers(1);
  D.start(nullptr);
  ASSERT_TRUE(D.parallelActive());
  const uint64_t NumReads = 96 * EventDispatcher::DefaultBatchCapacity;
  for (uint64_t I = 0; I != NumReads; ++I)
    D.enqueue(EventRecord::read(0, I + 1, 8 * I));
  D.finish();
  EXPECT_GE(D.backpressureBlocks(), EventDispatcher::RingGrowthThreshold);
  EXPECT_GE(D.ringGrowths(), 1u);
  EXPECT_GT(D.ringSlots(), EventDispatcher::InitialRingSlots);
  EXPECT_LE(D.ringSlots(), EventDispatcher::MaxRingSlots);
  EXPECT_EQ(Slow.reads(), NumReads);
}

//===----------------------------------------------------------------------===//
// Runtime batch capacity
//===----------------------------------------------------------------------===//

TEST(BatchCapacity, ValidatesAndReportsCapacity) {
  EventDispatcher D;
  EXPECT_EQ(D.batchCapacity(), EventDispatcher::DefaultBatchCapacity);
  // Out of range or not a power of two: refused, capacity unchanged.
  for (size_t Bad : {size_t(0), size_t(8), size_t(100), size_t(131072)}) {
    EXPECT_FALSE(D.setBatchCapacity(Bad)) << Bad;
    EXPECT_EQ(D.batchCapacity(), EventDispatcher::DefaultBatchCapacity);
  }
  EXPECT_TRUE(D.setBatchCapacity(EventDispatcher::MinBatchCapacity));
  EXPECT_TRUE(D.setBatchCapacity(EventDispatcher::MaxBatchCapacity));
  EXPECT_TRUE(D.setBatchCapacity(1024));
  EXPECT_EQ(D.batchCapacity(), 1024u);
  // Once events are buffered the resize is refused (it would drop them).
  NulTool T;
  D.addTool(&T);
  D.start(nullptr);
  D.enqueue(EventRecord::read(0, 1, 8));
  EXPECT_FALSE(D.setBatchCapacity(256));
  EXPECT_EQ(D.batchCapacity(), 1024u);
  D.finish();
}

TEST(BatchCapacity, ReportsAreIdenticalAcrossCapacities) {
  // Batch capacity moves flush boundaries (and with them where access
  // runs stop merging), but every tool is compaction-invariant — so the
  // rendered reports must be byte-identical at every legal capacity.
  const std::vector<std::string> ToolNames = {"aprof-trms", "aprof-rms",
                                              "memcheck", "callgrind"};
  std::vector<EventRecord> Events = makeTrace(20000, 41);
  std::vector<std::string> Baseline = reportsForRun(Events, ToolNames, 0);
  for (size_t Capacity : {size_t(16), size_t(1024), size_t(65536)}) {
    std::vector<std::string> Reports =
        reportsForRun(Events, ToolNames, 0, Capacity);
    ASSERT_EQ(Reports.size(), Baseline.size());
    for (size_t I = 0; I != Baseline.size(); ++I)
      EXPECT_EQ(Reports[I], Baseline[I])
          << ToolNames[I] << " diverged at capacity " << Capacity;
  }
  // And in parallel mode, capacity and worker count compose cleanly.
  std::vector<std::string> Parallel = reportsForRun(Events, ToolNames, 2, 64);
  for (size_t I = 0; I != Baseline.size(); ++I)
    EXPECT_EQ(Parallel[I], Baseline[I]) << ToolNames[I];
}

//===----------------------------------------------------------------------===//
// SpscQueue: the per-worker channel under the parallel replay engine
//===----------------------------------------------------------------------===//

TEST(SpscQueue, PreservesFifoOrderAcrossThreads) {
  SpscQueue<uint64_t> Queue(1024);
  constexpr uint64_t Count = 200000;
  std::thread Producer([&Queue] {
    for (uint64_t I = 0; I != Count; ++I)
      Queue.push(I);
  });
  uint64_t Expected = 0;
  uint64_t Batch[64];
  while (Expected != Count) {
    size_t Got = Queue.popBatch(Batch, 64);
    ASSERT_GT(Got, 0u);
    for (size_t I = 0; I != Got; ++I)
      ASSERT_EQ(Batch[I], Expected++);
  }
  Producer.join();
}

TEST(SpscQueue, BackpressureBoundsDepthToCapacity) {
  // A deliberately tiny queue: the producer must block rather than
  // overwrite, so the observed high-water mark never exceeds capacity.
  SpscQueue<uint64_t> Queue(8);
  ASSERT_GE(Queue.capacity(), 8u);
  constexpr uint64_t Count = 50000;
  std::thread Producer([&Queue] {
    for (uint64_t I = 0; I != Count; ++I)
      Queue.push(I);
  });
  uint64_t Seen = 0;
  uint64_t Batch[4];
  while (Seen != Count) {
    size_t Got = Queue.popBatch(Batch, 4);
    for (size_t I = 0; I != Got; ++I)
      ASSERT_EQ(Batch[I], Seen++);
  }
  Producer.join();
  EXPECT_LE(Queue.peakDepth(), Queue.capacity());
  EXPECT_GT(Queue.peakDepth(), 0u);
}

TEST(SpscQueue, PopBatchDrainsUpToMax) {
  SpscQueue<int> Queue(64);
  for (int I = 0; I != 10; ++I)
    Queue.push(I);
  int Batch[32];
  size_t Got = Queue.popBatch(Batch, 32);
  EXPECT_EQ(Got, 10u);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(Batch[I], I);
}

} // namespace
