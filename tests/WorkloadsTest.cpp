//===- tests/WorkloadsTest.cpp - Workload suite tests ---------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Every registered workload must compile, run, and produce deterministic
// output at several (threads, size) points — parameterized over the full
// registry — and the flagship workloads must reproduce the paper's
// qualitative claims (producer-consumer trms, buffered-read external
// input, dbserver external-dominated vs fluidanimate thread-dominated
// induced input, rms flattening on buffered scans).
//
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include "core/Metrics.h"
#include "core/Report.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

const RoutineProfile *findRoutine(const ProfiledRun &Run,
                                  const std::string &Name,
                                  std::map<RoutineId, RoutineProfile> &Out) {
  Out = Run.Profile.mergedByRoutine();
  RoutineId Id = Run.Symbols.lookup(Name);
  if (Id == ~0u)
    return nullptr;
  auto It = Out.find(Id);
  return It == Out.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// Whole-registry sweep
//===----------------------------------------------------------------------===//

class WorkloadSweepTest
    : public ::testing::TestWithParam<std::tuple<int, unsigned, uint64_t>> {
};

TEST_P(WorkloadSweepTest, CompilesRunsDeterministically) {
  const WorkloadInfo &W = allWorkloads()[std::get<0>(GetParam())];
  WorkloadParams P;
  P.Threads = std::get<1>(GetParam());
  P.Size = std::get<2>(GetParam());

  RunResult First = runWorkloadNative(W, P);
  ASSERT_TRUE(First.Ok) << W.Name << ": " << First.Error;
  EXPECT_FALSE(First.Output.empty()) << W.Name;
  EXPECT_GT(First.Stats.BasicBlocks, 0u);

  RunResult Second = runWorkloadNative(W, P);
  ASSERT_TRUE(Second.Ok);
  EXPECT_EQ(First.Output, Second.Output) << W.Name;
  EXPECT_EQ(First.Stats.Instructions, Second.Stats.Instructions);
}

TEST_P(WorkloadSweepTest, ProfilesCleanly) {
  const WorkloadInfo &W = allWorkloads()[std::get<0>(GetParam())];
  WorkloadParams P;
  P.Threads = std::get<1>(GetParam());
  P.Size = std::get<2>(GetParam());

  ProfiledRun Run = profileWorkload(W, P);
  ASSERT_TRUE(Run.Run.Ok) << W.Name << ": " << Run.Run.Error;
  EXPECT_GT(Run.Profile.totalActivations(), 0u) << W.Name;
  // Inequality 1 holds for every routine aggregate.
  for (const auto &[Key, Profile] : Run.Profile.threadRoutineProfiles())
    EXPECT_GE(Profile.sumTrms(), Profile.sumRms());
  // Instrumentation must not perturb the guest.
  RunResult Native = runWorkloadNative(W, P);
  EXPECT_EQ(Native.Output, Run.Run.Output) << W.Name;
}

std::vector<std::tuple<int, unsigned, uint64_t>> sweepPoints() {
  std::vector<std::tuple<int, unsigned, uint64_t>> Points;
  for (int I = 0; I != static_cast<int>(allWorkloads().size()); ++I) {
    Points.emplace_back(I, 2u, 32u);
    Points.emplace_back(I, 4u, 64u);
  }
  return Points;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSweepTest, ::testing::ValuesIn(sweepPoints()),
    [](const ::testing::TestParamInfo<std::tuple<int, unsigned, uint64_t>>
           &Info) {
      return allWorkloads()[std::get<0>(Info.param)].Name + "_t" +
             std::to_string(std::get<1>(Info.param)) + "_n" +
             std::to_string(std::get<2>(Info.param));
    });

//===----------------------------------------------------------------------===//
// Paper-claim checks on the flagship workloads
//===----------------------------------------------------------------------===//

TEST(PaperClaims, ProducerConsumerTrmsGrowsRmsDoesNot) {
  const WorkloadInfo *W = findWorkload("producer_consumer");
  ASSERT_NE(W, nullptr);
  WorkloadParams P;
  P.Size = 50;
  ProfiledRun Run = profileWorkload(*W, P);
  ASSERT_TRUE(Run.Run.Ok) << Run.Run.Error;

  std::map<RoutineId, RoutineProfile> Merged;
  const RoutineProfile *Consumer = findRoutine(Run, "consumer", Merged);
  ASSERT_NE(Consumer, nullptr);
  // The consumer's input is dominated by thread-induced accesses: each
  // of the 50 values it reads was produced by the other thread.
  EXPECT_GE(Consumer->inducedThread(), 50u);
  EXPECT_GT(Consumer->sumTrms(), Consumer->sumRms() + 40);
}

TEST(PaperClaims, BufferedReadInputIsExternal) {
  const WorkloadInfo *W = findWorkload("buffered_read");
  ASSERT_NE(W, nullptr);
  WorkloadParams P;
  P.Size = 40;
  ProfiledRun Run = profileWorkload(*W, P);
  ASSERT_TRUE(Run.Run.Ok);

  std::map<RoutineId, RoutineProfile> Merged;
  const RoutineProfile *Reader = findRoutine(Run, "externalRead", Merged);
  ASSERT_NE(Reader, nullptr);
  // Exactly one of the two kernel-filled cells is consumed per round
  // (plus loop-control locals): external input ~= N, never 2N.
  EXPECT_GE(Reader->inducedExternal(), 40u);
  EXPECT_LT(Reader->inducedExternal(), 60u);
  EXPECT_EQ(Reader->inducedThread(), 0u);
}

TEST(PaperClaims, DbServerInducedInputIsMostlyExternal) {
  const WorkloadInfo *W = findWorkload("dbserver");
  ASSERT_NE(W, nullptr);
  WorkloadParams P;
  P.Threads = 4;
  P.Size = 48;
  ProfiledRun Run = profileWorkload(*W, P);
  ASSERT_TRUE(Run.Run.Ok);
  RunMetrics Metrics = computeRunMetrics(Run.Profile);
  EXPECT_GT(Metrics.ExternalPct, 50.0);
}

TEST(PaperClaims, FluidanimateInducedInputIsAllThreads) {
  const WorkloadInfo *W = findWorkload("fluidanimate");
  ASSERT_NE(W, nullptr);
  WorkloadParams P;
  P.Threads = 4;
  P.Size = 48;
  ProfiledRun Run = profileWorkload(*W, P);
  ASSERT_TRUE(Run.Run.Ok);
  RunMetrics Metrics = computeRunMetrics(Run.Profile);
  EXPECT_GT(Metrics.InducedThread, 0u);
  EXPECT_EQ(Metrics.InducedExternal, 0u);
}

TEST(PaperClaims, MysqlSelectRmsFlattensTrmsGrows) {
  // The Figure 4 effect: across queries over growing tables, the scan
  // routine's distinct trms values outnumber its distinct rms values
  // (buffer reuse caps the rms).
  const WorkloadInfo *W = findWorkload("dbserver");
  ASSERT_NE(W, nullptr);
  WorkloadParams P;
  P.Threads = 2;
  P.Size = 64;
  ProfiledRun Run = profileWorkload(*W, P);
  ASSERT_TRUE(Run.Run.Ok);

  std::map<RoutineId, RoutineProfile> Merged;
  const RoutineProfile *Select = findRoutine(Run, "mysql_select", Merged);
  ASSERT_NE(Select, nullptr);
  EXPECT_GT(Select->distinctTrmsValues(), Select->distinctRmsValues());
  // And the trms-keyed worst-case plot is (close to) linear.
  FitResult Fit = fitWorstCase(*Select, InputMetric::Trms);
  EXPECT_TRUE(Fit.best().Model == GrowthModel::Linear ||
              Fit.best().Model == GrowthModel::NLogN)
      << formatFit(Fit.best());
}

TEST(PaperClaims, SortCompareRevealsAsymptoticGap) {
  const WorkloadInfo *W = findWorkload("sort_compare");
  ASSERT_NE(W, nullptr);
  WorkloadParams P;
  P.Size = 600;
  ProfiledRun Run = profileWorkload(*W, P);
  ASSERT_TRUE(Run.Run.Ok);

  std::map<RoutineId, RoutineProfile> Merged;
  const RoutineProfile *Insertion =
      findRoutine(Run, "insertionSort", Merged);
  ASSERT_NE(Insertion, nullptr);
  FitResult InsertionFit = fitWorstCase(*Insertion, InputMetric::Trms);
  EXPECT_TRUE(InsertionFit.PowerLawValid);
  EXPECT_GT(InsertionFit.PowerLawAlpha, 1.7) << "insertion sort not "
                                                "superlinear";

  std::map<RoutineId, RoutineProfile> Merged2;
  const RoutineProfile *Merge = findRoutine(Run, "mergeSort", Merged2);
  ASSERT_NE(Merge, nullptr);
  FitResult MergeFit = fitWorstCase(*Merge, InputMetric::Trms);
  EXPECT_TRUE(MergeFit.PowerLawValid);
  // n log n over small n has an effective exponent around 1.3-1.6; the
  // point is the clear gap from insertion sort's ~2.
  EXPECT_LT(MergeFit.PowerLawAlpha, 1.7) << "merge sort looks quadratic";
  EXPECT_GT(InsertionFit.PowerLawAlpha, MergeFit.PowerLawAlpha + 0.25);
}

TEST(PaperClaims, VipsWriteBehindThreadRichness) {
  // Figure 7: wbuffer_write_thread's rms collapses while its trms
  // spreads thanks to external + thread input.
  const WorkloadInfo *W = findWorkload("vips_pipeline");
  ASSERT_NE(W, nullptr);
  WorkloadParams P;
  P.Threads = 3;
  P.Size = 48;
  ProfiledRun Run = profileWorkload(*W, P);
  ASSERT_TRUE(Run.Run.Ok) << Run.Run.Error;

  std::map<RoutineId, RoutineProfile> Merged;
  const RoutineProfile *Writer =
      findRoutine(Run, "wbuffer_write_thread", Merged);
  ASSERT_NE(Writer, nullptr);
  uint64_t Induced = Writer->inducedThread() + Writer->inducedExternal();
  ASSERT_GT(Writer->sumTrms(), 0u);
  // The paper reports 99.9% of this routine's input is induced; our
  // pipeline reproduces a strongly induced mix.
  EXPECT_GT(static_cast<double>(Induced) /
                static_cast<double>(Writer->sumTrms()),
            0.5);
}

TEST(PaperClaims, ThreadCountLeavesResultsUnchanged) {
  // Data-parallel kernels must compute the same answer at any width
  // (the paper's Figure 14 sweeps threads; the guest results must not
  // change underneath the measurement).
  for (const char *Name : {"md", "ilbdc", "fluidanimate"}) {
    const WorkloadInfo *W = findWorkload(Name);
    ASSERT_NE(W, nullptr);
    WorkloadParams P2;
    P2.Threads = 2;
    P2.Size = 48;
    WorkloadParams P8 = P2;
    P8.Threads = 8;
    // Problem sizes are rounded per thread count, so compare each config
    // against itself rerun, and check both run.
    RunResult A = runWorkloadNative(*W, P2);
    RunResult B = runWorkloadNative(*W, P8);
    EXPECT_TRUE(A.Ok) << Name << A.Error;
    EXPECT_TRUE(B.Ok) << Name << B.Error;
    EXPECT_GT(B.Stats.ThreadsSpawned, A.Stats.ThreadsSpawned);
  }
}

TEST(ShardedProfiling, ShardCountLeavesWorkloadProfilesByteIdentical) {
  // The sharded wts shadow must be invisible in the results: rendered
  // profiles for multithreaded workloads are byte-identical at every
  // shard count (the driver's --shadow-shards contract).
  for (const char *Name : {"producer_consumer", "dbserver"}) {
    const WorkloadInfo *W = findWorkload(Name);
    ASSERT_NE(W, nullptr);
    WorkloadParams P;
    P.Threads = 4;
    P.Size = 32;

    TrmsProfilerOptions Baseline;
    ProfiledRun Global = profileWorkload(*W, P, Baseline);
    ASSERT_TRUE(Global.Run.Ok) << Name << ": " << Global.Run.Error;
    std::string GlobalReport =
        renderRunSummary(Global.Profile, &Global.Symbols);

    for (unsigned Shards : {4u, 16u}) {
      TrmsProfilerOptions Opts;
      Opts.ShadowShards = Shards;
      ProfiledRun Sharded = profileWorkload(*W, P, Opts);
      ASSERT_TRUE(Sharded.Run.Ok) << Name << ": " << Sharded.Run.Error;
      EXPECT_EQ(Sharded.Run.Output, Global.Run.Output) << Name;
      EXPECT_EQ(renderRunSummary(Sharded.Profile, &Sharded.Symbols),
                GlobalReport)
          << Name << " at " << Shards << " shards";
    }
  }
}

} // namespace
