//===- tests/ShadowTest.cpp - Shadow memory unit tests -------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "shadow/ShadowMemory.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>

using namespace isp;

namespace {

TEST(ThreeLevelShadow, DefaultsToZero) {
  ThreeLevelShadow<uint64_t> Shadow;
  EXPECT_EQ(Shadow.get(0), 0u);
  EXPECT_EQ(Shadow.get(123456789), 0u);
  EXPECT_EQ(Shadow.bytesAllocated(), 0u);
}

TEST(ThreeLevelShadow, SetGetAcrossChunkBoundaries) {
  ThreeLevelShadow<uint64_t> Shadow;
  const Addr Boundary = ThreeLevelShadow<uint64_t>::ChunkCells;
  Shadow.set(Boundary - 1, 11);
  Shadow.set(Boundary, 22);
  Shadow.set(Boundary * 5 + 3, 33);
  EXPECT_EQ(Shadow.get(Boundary - 1), 11u);
  EXPECT_EQ(Shadow.get(Boundary), 22u);
  EXPECT_EQ(Shadow.get(Boundary * 5 + 3), 33u);
  EXPECT_EQ(Shadow.get(Boundary + 1), 0u);
}

TEST(ThreeLevelShadow, SparseAllocationIsLazy) {
  ThreeLevelShadow<uint64_t> Shadow;
  // Touch two far-apart addresses: only two chunks (plus secondaries)
  // must be materialized.
  Shadow.set(0, 1);
  Shadow.set(Addr(1) << 26, 2);
  uint64_t TwoChunks = Shadow.bytesAllocated();
  Shadow.set(1, 3); // same chunk as address 0
  EXPECT_EQ(Shadow.bytesAllocated(), TwoChunks);
  Shadow.set(Addr(1) << 25, 4); // new chunk
  EXPECT_GT(Shadow.bytesAllocated(), TwoChunks);
}

TEST(ThreeLevelShadow, ForEachNonZeroVisitsExactlyLiveCells) {
  ThreeLevelShadow<uint64_t> Shadow;
  std::map<Addr, uint64_t> Expected = {
      {7, 1}, {8192, 2}, {100000, 3}, {(Addr(1) << 25) + 17, 4}};
  for (auto &[A, V] : Expected)
    Shadow.set(A, V);
  Shadow.set(55, 9);
  Shadow.set(55, 0); // zeroed again: must not be visited

  std::map<Addr, uint64_t> Seen;
  Shadow.forEachNonZero([&](Addr A, uint64_t &V) { Seen[A] = V; });
  EXPECT_EQ(Seen, Expected);
}

TEST(ThreeLevelShadow, ForEachNonZeroAllowsRewriting) {
  ThreeLevelShadow<uint64_t> Shadow;
  for (Addr A = 0; A != 100; ++A)
    Shadow.set(A * 1000, A + 1);
  Shadow.forEachNonZero([&](Addr A, uint64_t &V) { V *= 2; });
  for (Addr A = 0; A != 100; ++A)
    EXPECT_EQ(Shadow.get(A * 1000), (A + 1) * 2);
}

TEST(ThreeLevelShadow, ClearReleasesEverything) {
  ThreeLevelShadow<uint32_t> Shadow;
  Shadow.set(42, 7);
  Shadow.clear();
  EXPECT_EQ(Shadow.get(42), 0u);
  EXPECT_EQ(Shadow.bytesAllocated(), 0u);
}

TEST(DenseShadow, MatchesThreeLevelOnRandomWorkload) {
  ThreeLevelShadow<uint64_t> Three;
  DenseShadow<uint64_t> Dense;
  Rng R(17);
  for (int I = 0; I != 20000; ++I) {
    Addr A = R.nextBelow(1 << 22);
    if (R.nextBool(0.5)) {
      uint64_t V = R.next() | 1;
      Three.set(A, V);
      Dense.set(A, V);
    } else {
      EXPECT_EQ(Three.get(A), Dense.get(A));
    }
  }
}

TEST(DenseShadow, FootprintGrowsWithPopulation) {
  DenseShadow<uint64_t> Dense;
  uint64_t Empty = Dense.bytesAllocated();
  for (Addr A = 0; A != 10000; ++A)
    Dense.set(A * 7, A + 1);
  EXPECT_GT(Dense.bytesAllocated(), Empty + 10000 * sizeof(uint64_t));
}

TEST(ShadowSpace, ThreeLevelWinsOnClusteredAddresses) {
  // The paper's design point: threads touch clustered regions, so chunked
  // tables cost far less than per-cell hash nodes.
  ThreeLevelShadow<uint64_t> Three;
  DenseShadow<uint64_t> Dense;
  for (Addr A = 0; A != 200000; ++A) {
    Three.set(A, A + 1);
    Dense.set(A, A + 1);
  }
  EXPECT_LT(Three.totalBytes(), Dense.totalBytes());
}

} // namespace
