//===- tests/ShadowTest.cpp - Shadow memory unit tests -------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "shadow/ShadowMemory.h"

#include "shadow/ShardedShadow.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <iterator>
#include <map>

using namespace isp;

namespace {

TEST(ThreeLevelShadow, DefaultsToZero) {
  ThreeLevelShadow<uint64_t> Shadow;
  EXPECT_EQ(Shadow.get(0), 0u);
  EXPECT_EQ(Shadow.get(123456789), 0u);
  EXPECT_EQ(Shadow.bytesAllocated(), 0u);
}

TEST(ThreeLevelShadow, SetGetAcrossChunkBoundaries) {
  ThreeLevelShadow<uint64_t> Shadow;
  const Addr Boundary = ThreeLevelShadow<uint64_t>::ChunkCells;
  Shadow.set(Boundary - 1, 11);
  Shadow.set(Boundary, 22);
  Shadow.set(Boundary * 5 + 3, 33);
  EXPECT_EQ(Shadow.get(Boundary - 1), 11u);
  EXPECT_EQ(Shadow.get(Boundary), 22u);
  EXPECT_EQ(Shadow.get(Boundary * 5 + 3), 33u);
  EXPECT_EQ(Shadow.get(Boundary + 1), 0u);
}

TEST(ThreeLevelShadow, SparseAllocationIsLazy) {
  ThreeLevelShadow<uint64_t> Shadow;
  // Touch two far-apart addresses: only two chunks (plus secondaries)
  // must be materialized.
  Shadow.set(0, 1);
  Shadow.set(Addr(1) << 26, 2);
  uint64_t TwoChunks = Shadow.bytesAllocated();
  Shadow.set(1, 3); // same chunk as address 0
  EXPECT_EQ(Shadow.bytesAllocated(), TwoChunks);
  Shadow.set(Addr(1) << 25, 4); // new chunk
  EXPECT_GT(Shadow.bytesAllocated(), TwoChunks);
}

TEST(ThreeLevelShadow, ForEachNonZeroVisitsExactlyLiveCells) {
  ThreeLevelShadow<uint64_t> Shadow;
  std::map<Addr, uint64_t> Expected = {
      {7, 1}, {8192, 2}, {100000, 3}, {(Addr(1) << 25) + 17, 4}};
  for (auto &[A, V] : Expected)
    Shadow.set(A, V);
  Shadow.set(55, 9);
  Shadow.set(55, 0); // zeroed again: must not be visited

  std::map<Addr, uint64_t> Seen;
  Shadow.forEachNonZero([&](Addr A, uint64_t &V) { Seen[A] = V; });
  EXPECT_EQ(Seen, Expected);
}

TEST(ThreeLevelShadow, ForEachNonZeroAllowsRewriting) {
  ThreeLevelShadow<uint64_t> Shadow;
  for (Addr A = 0; A != 100; ++A)
    Shadow.set(A * 1000, A + 1);
  Shadow.forEachNonZero([&](Addr A, uint64_t &V) { V *= 2; });
  for (Addr A = 0; A != 100; ++A)
    EXPECT_EQ(Shadow.get(A * 1000), (A + 1) * 2);
}

TEST(ThreeLevelShadow, ClearReleasesEverything) {
  ThreeLevelShadow<uint32_t> Shadow;
  Shadow.set(42, 7);
  Shadow.clear();
  EXPECT_EQ(Shadow.get(42), 0u);
  EXPECT_EQ(Shadow.bytesAllocated(), 0u);
}

// Drives one shadow through the range primitives and a second instance
// of the same type cell-by-cell, against a std::map reference model.
// Range starts sit just before chunk / secondary-table / primary-table
// strides so spans cross every radix boundary, and the alternating
// bases keep evicting the one-entry chunk cache.
template <typename ShadowT> void checkRangeOpsMatchCellOps() {
  ShadowT RangeShadow;
  ShadowT CellShadow;
  std::map<Addr, uint64_t> Reference;
  Rng R(29);

  constexpr Addr Chunk = ThreeLevelShadow<uint64_t>::ChunkCells;
  constexpr Addr L2Span = Chunk << ThreeLevelShadow<uint64_t>::L2Bits;
  const Addr Bases[] = {0,           Chunk - 3,     5 * Chunk - 1,
                        L2Span - 7,  3 * L2Span - 2, (Addr(1) << 25) - 5};

  for (int Step = 0; Step != 400; ++Step) {
    Addr A = Bases[R.nextBelow(std::size(Bases))] + R.nextBelow(16);
    uint64_t Cells = 1 + R.nextBelow(3 * Chunk);
    if (R.nextBool(0.5)) {
      uint64_t V = R.next() | 1;
      RangeShadow.fillRange(A, Cells, V);
      for (uint64_t I = 0; I != Cells; ++I) {
        CellShadow.set(A + I, V);
        Reference[A + I] = V;
      }
    } else {
      uint64_t RangeMix = 0;
      RangeShadow.forRange(A, Cells, [&](Addr At, uint64_t &V) {
        RangeMix ^= V + At;
        V = At + 1; // mutate through the range-provided reference
      });
      uint64_t CellMix = 0;
      for (uint64_t I = 0; I != Cells; ++I) {
        CellMix ^= CellShadow.get(A + I) + (A + I);
        CellShadow.set(A + I, A + I + 1);
        Reference[A + I] = A + I + 1;
      }
      EXPECT_EQ(RangeMix, CellMix) << "step " << Step;
    }
  }

  std::map<Addr, uint64_t> FromRange, FromCell, NonZeroRef;
  RangeShadow.forEachNonZero([&](Addr A, uint64_t &V) { FromRange[A] = V; });
  CellShadow.forEachNonZero([&](Addr A, uint64_t &V) { FromCell[A] = V; });
  for (auto &[A, V] : Reference)
    if (V)
      NonZeroRef[A] = V;
  EXPECT_EQ(FromRange, FromCell);
  EXPECT_EQ(FromRange, NonZeroRef);
}

TEST(ShadowProperty, ThreeLevelRangeOpsMatchCellOps) {
  checkRangeOpsMatchCellOps<ThreeLevelShadow<uint64_t>>();
}

TEST(ShadowProperty, DenseRangeOpsMatchCellOps) {
  checkRangeOpsMatchCellOps<DenseShadow<uint64_t>>();
}

TEST(ThreeLevelShadow, ClearInvalidatesChunkCache) {
  ThreeLevelShadow<uint64_t> Shadow;
  Shadow.set(123, 5);
  EXPECT_EQ(Shadow.get(123), 5u); // cache now points at the chunk
  Shadow.clear();
  EXPECT_EQ(Shadow.get(123), 0u); // stale cached chunk must not survive
  EXPECT_EQ(Shadow.bytesAllocated(), 0u);
  Shadow.set(123, 6);
  EXPECT_EQ(Shadow.get(123), 6u);
}

TEST(DenseShadow, ClearResetsAccounting) {
  DenseShadow<uint64_t> Dense;
  EXPECT_EQ(Dense.bytesAllocated(), 0u);
  for (Addr A = 0; A != 5000; ++A)
    Dense.set(A * 3, 1);
  EXPECT_GT(Dense.bytesAllocated(), 0u);
  Dense.clear();
  EXPECT_EQ(Dense.bytesAllocated(), 0u);
  EXPECT_EQ(Dense.get(3), 0u);
  Dense.set(7, 9);
  EXPECT_EQ(Dense.get(7), 9u);
  EXPECT_GT(Dense.bytesAllocated(), 0u);
}

TEST(DenseShadow, BytesAllocatedIncludesLoadFactorHeadroom) {
  DenseShadow<uint64_t> Dense;
  for (Addr A = 1; A != 1002; ++A)
    Dense.set(A, 1);
  // The bucket array is accounted at no less than size() /
  // max_load_factor() slots (the default load factor is 1.0), so the
  // footprint is bounded below by per-node bytes plus one bucket slot
  // per entry.
  uint64_t PerNode = sizeof(Addr) + sizeof(uint64_t) + 2 * sizeof(void *);
  EXPECT_GE(Dense.bytesAllocated(), 1001 * (PerNode + sizeof(void *)));
}

TEST(DenseShadow, MatchesThreeLevelOnRandomWorkload) {
  ThreeLevelShadow<uint64_t> Three;
  DenseShadow<uint64_t> Dense;
  Rng R(17);
  for (int I = 0; I != 20000; ++I) {
    Addr A = R.nextBelow(1 << 22);
    if (R.nextBool(0.5)) {
      uint64_t V = R.next() | 1;
      Three.set(A, V);
      Dense.set(A, V);
    } else {
      EXPECT_EQ(Three.get(A), Dense.get(A));
    }
  }
}

TEST(DenseShadow, FootprintGrowsWithPopulation) {
  DenseShadow<uint64_t> Dense;
  uint64_t Empty = Dense.bytesAllocated();
  for (Addr A = 0; A != 10000; ++A)
    Dense.set(A * 7, A + 1);
  EXPECT_GT(Dense.bytesAllocated(), Empty + 10000 * sizeof(uint64_t));
}

//===----------------------------------------------------------------------===//
// Sharded shadow: every shard count must be observationally identical
// to the single global shadow
//===----------------------------------------------------------------------===//

TEST(ShardedShadow, ValidatesShardCount) {
  ShardedShadow<uint64_t> Shadow;
  EXPECT_EQ(Shadow.shardCount(), 1u);
  EXPECT_FALSE(Shadow.setShardCount(0));
  EXPECT_FALSE(Shadow.setShardCount(3));
  EXPECT_FALSE(Shadow.setShardCount(ShardedShadow<uint64_t>::MaxShards * 2));
  EXPECT_EQ(Shadow.shardCount(), 1u);
  EXPECT_TRUE(Shadow.setShardCount(16));
  EXPECT_EQ(Shadow.shardCount(), 16u);
}

TEST(ShardedShadow, RoutesByChunkKey) {
  ShardedShadow<uint64_t> Shadow;
  ASSERT_TRUE(Shadow.setShardCount(4));
  constexpr Addr Chunk = ShardedShadow<uint64_t>::ChunkCells;
  // All cells of one chunk land on one shard; consecutive chunks rotate.
  EXPECT_EQ(Shadow.shardOf(0), Shadow.shardOf(Chunk - 1));
  EXPECT_EQ(Shadow.shardOf(Chunk), 1u);
  EXPECT_EQ(Shadow.shardOf(2 * Chunk), 2u);
  EXPECT_EQ(Shadow.shardOf(4 * Chunk), 0u);
}

/// Drives a sharded shadow and a plain ThreeLevelShadow through the same
/// random mix of point ops and boundary-crossing range ops, then demands
/// identical contents, identical range-visit results, and matching reset
/// accounting. Run for each shard count the driver flag accepts.
void checkShardedMatchesGlobal(unsigned ShardCount) {
  ShardedShadow<uint64_t> Sharded;
  ASSERT_TRUE(Sharded.setShardCount(ShardCount));
  ThreeLevelShadow<uint64_t> Global;
  Rng R(31 + ShardCount);

  constexpr Addr Chunk = ThreeLevelShadow<uint64_t>::ChunkCells;
  constexpr Addr L2Span = Chunk << ThreeLevelShadow<uint64_t>::L2Bits;
  const Addr Bases[] = {0,          Chunk - 3,      5 * Chunk - 1,
                        L2Span - 7, 3 * L2Span - 2, (Addr(1) << 25) - 5};

  for (int Step = 0; Step != 500; ++Step) {
    Addr A = Bases[R.nextBelow(std::size(Bases))] + R.nextBelow(16);
    switch (R.nextBelow(4)) {
    case 0: {
      uint64_t V = R.next() | 1;
      Sharded.set(A, V);
      Global.set(A, V);
      break;
    }
    case 1:
      EXPECT_EQ(Sharded.get(A), Global.get(A)) << "step " << Step;
      break;
    case 2: {
      uint64_t Cells = 1 + R.nextBelow(3 * Chunk);
      uint64_t V = R.next() | 1;
      Sharded.fillRange(A, Cells, V);
      Global.fillRange(A, Cells, V);
      break;
    }
    default: {
      uint64_t Cells = 1 + R.nextBelow(3 * Chunk);
      uint64_t ShardedMix = 0, GlobalMix = 0;
      Sharded.forRange(A, Cells, [&](Addr At, uint64_t &V) {
        ShardedMix ^= V + At;
        V = At + 1;
      });
      Global.forRange(A, Cells, [&](Addr At, uint64_t &V) {
        GlobalMix ^= V + At;
        V = At + 1;
      });
      EXPECT_EQ(ShardedMix, GlobalMix) << "step " << Step;
      break;
    }
    }
  }

  // The full iterate views must agree cell for cell. The sharded
  // enumeration is not globally address-sorted, so compare as maps.
  std::map<Addr, uint64_t> FromSharded, FromGlobal;
  Sharded.forEachNonZero([&](Addr A, uint64_t &V) { FromSharded[A] = V; });
  Global.forEachNonZero([&](Addr A, uint64_t &V) { FromGlobal[A] = V; });
  EXPECT_EQ(FromSharded, FromGlobal);
  EXPECT_GT(FromSharded.size(), 0u);

  // renumberNonZero is forEachNonZero plus one epoch bump per shard.
  uint64_t EpochsBefore = Sharded.totalEpochs();
  std::map<Addr, uint64_t> FromRenumber;
  Sharded.renumberNonZero([&](Addr A, uint64_t &V) { FromRenumber[A] = V; });
  EXPECT_EQ(FromRenumber, FromGlobal);
  EXPECT_EQ(Sharded.totalEpochs(), EpochsBefore + ShardCount);
  for (size_t I = 0; I != ShardCount; ++I)
    EXPECT_EQ(Sharded.shardEpoch(I), 1u);

  // Reset accounting: clear() releases every shard's storage while the
  // shard count and the lifetime tallies (allocation counts, epochs)
  // survive, matching the single-shadow semantics.
  EXPECT_GT(Sharded.bytesAllocated(), 0u);
  uint64_t LifetimeChunks = Sharded.chunksAllocated();
  EXPECT_GT(LifetimeChunks, 0u);
  Sharded.clear();
  EXPECT_EQ(Sharded.bytesAllocated(), 0u);
  EXPECT_EQ(Sharded.chunksAllocated(), LifetimeChunks);
  EXPECT_EQ(Sharded.shardCount(), ShardCount);
  EXPECT_EQ(Sharded.totalEpochs(), EpochsBefore + ShardCount);
  size_t Visited = 0;
  Sharded.forEachNonZero([&](Addr, uint64_t &) { ++Visited; });
  EXPECT_EQ(Visited, 0u);
  for (auto &[A, V] : FromGlobal)
    EXPECT_EQ(Sharded.get(A), 0u) << "address " << A;
}

TEST(ShardedShadowProperty, OneShardMatchesGlobal) {
  checkShardedMatchesGlobal(1);
}

TEST(ShardedShadowProperty, FourShardsMatchGlobal) {
  checkShardedMatchesGlobal(4);
}

TEST(ShardedShadowProperty, SixteenShardsMatchGlobal) {
  checkShardedMatchesGlobal(16);
}

TEST(ShadowSpace, ThreeLevelWinsOnClusteredAddresses) {
  // The paper's design point: threads touch clustered regions, so chunked
  // tables cost far less than per-cell hash nodes.
  ThreeLevelShadow<uint64_t> Three;
  DenseShadow<uint64_t> Dense;
  for (Addr A = 0; A != 200000; ++A) {
    Three.set(A, A + 1);
    Dense.set(A, A + 1);
  }
  EXPECT_LT(Three.totalBytes(), Dense.totalBytes());
}

} // namespace
