//===- tests/VmOptimizerTest.cpp - Peephole optimizer tests --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The optimizer's contract: semantics preserved exactly (output, exit
// code, runtime errors), profiles bit-identical (the quiet-access pass
// may legitimately drop redundant read/write events from the stream,
// but never ones a tool's counters can observe — see
// Optimizer.h), and strictly fewer interpreted instructions on
// foldable code.
//
//===----------------------------------------------------------------------===//

#include "vm/Optimizer.h"

#include "analysis/Escape.h"
#include "analysis/Range.h"
#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "vm/Compiler.h"
#include "vm/Disasm.h"
#include "vm/Machine.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

struct Pair {
  RunResult Plain;
  RunResult Optimized;
  OptimizerStats Stats;
};

Pair runBoth(const std::string &Source,
             MachineOptions Opts = MachineOptions()) {
  Pair Out;
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render();
  if (!Prog)
    return Out;
  {
    Machine M(*Prog, nullptr, Opts);
    Out.Plain = M.run();
  }
  Out.Stats = optimizeProgram(*Prog);
  {
    Machine M(*Prog, nullptr, Opts);
    Out.Optimized = M.run();
  }
  return Out;
}

TEST(Optimizer, FoldsConstantExpressions) {
  Pair P = runBoth(R"(
    fn main() {
      var a = 2 + 3 * 4;
      var b = (100 / 5) % 7;
      var c = -(1 + 1);
      var d = !0;
      print(a + b + c + d);
      return 0;
    })");
  ASSERT_TRUE(P.Plain.Ok && P.Optimized.Ok);
  EXPECT_EQ(P.Plain.Output, P.Optimized.Output);
  EXPECT_GT(P.Stats.ConstantsFolded, 3u);
  EXPECT_LT(P.Optimized.Stats.Instructions, P.Plain.Stats.Instructions);
  EXPECT_EQ(P.Optimized.Stats.BasicBlocks, P.Plain.Stats.BasicBlocks);
}

TEST(Optimizer, ResolvesConstantBranches) {
  Pair P = runBoth(R"(
    fn main() {
      var a = 0;
      if (1 == 1) { a = a + 7; }
      if (2 < 1) { a = a + 1000; }
      while (0) { a = 99; }
      print(a);
      return 0;
    })");
  ASSERT_TRUE(P.Plain.Ok && P.Optimized.Ok);
  EXPECT_EQ(P.Plain.Output, "7\n");
  EXPECT_EQ(P.Optimized.Output, "7\n");
  EXPECT_GT(P.Stats.BranchesResolved, 0u);
}

TEST(Optimizer, PreservesDivisionByZeroError) {
  // 1 / 0 must stay a runtime error, not become a silent constant or a
  // compile-time crash.
  Pair P = runBoth("fn main() { return 1 / 0; }");
  EXPECT_FALSE(P.Plain.Ok);
  EXPECT_FALSE(P.Optimized.Ok);
  EXPECT_EQ(P.Plain.Error, P.Optimized.Error);
}

TEST(Optimizer, LoopSemanticsSurviveFolding) {
  Pair P = runBoth(R"(
    fn main() {
      var sum = 0;
      for (var i = 0; i < 3 + 7; i = i + 1) {
        if (i % (1 + 1) == 0) { sum = sum + i; }
        if (i == 2 * 4) { break; }
      }
      print(sum);
      return 0;
    })");
  ASSERT_TRUE(P.Plain.Ok && P.Optimized.Ok);
  EXPECT_EQ(P.Plain.Output, P.Optimized.Output);
}

TEST(Optimizer, EventStreamIsInvariantSingleThreaded) {
  // The optimization contract: per-thread event sequences are untouched,
  // so a single-threaded program's profile is bit-identical. (With
  // threads, the interleaving may shift — scheduler quanta count
  // instructions — like running under a different slice length.)
  const char *Source = R"(
    var table[32];
    fn work(id, n) {
      var acc = 0;
      for (var i = 0; i < n; i = i + 1) {
        acc = acc + table[(i * (2 + 1)) % 32];
        table[i % (16 + 16)] = acc;
      }
      return acc;
    }
    fn main() {
      var r = work(1, 40) + work(0, 4 * 5);
      print(r);
      return 0;
    })";
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  ASSERT_TRUE(Prog.has_value());

  auto profile = [](const Program &P) {
    TrmsProfilerOptions Opts;
    Opts.KeepActivationLog = true;
    TrmsProfiler Profiler(Opts);
    EventDispatcher D;
    D.addTool(&Profiler);
    Machine M(P, &D);
    EXPECT_TRUE(M.run().Ok);
    return Profiler.takeDatabase();
  };

  ProfileDatabase Plain = profile(*Prog);
  OptimizerStats Stats = optimizeProgram(*Prog);
  EXPECT_GT(Stats.InstructionsRemoved, 0u);
  ProfileDatabase Optimized = profile(*Prog);
  EXPECT_EQ(Plain.log(), Optimized.log());
}

class OptimizerWorkloadTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(OptimizerWorkloadTest, SemanticsPreservedOnWorkloads) {
  const WorkloadInfo *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  WorkloadParams Params;
  Params.Threads = 3;
  Params.Size = 48;
  std::optional<Program> Prog = compileWorkload(*W, Params);
  ASSERT_TRUE(Prog.has_value());

  RunResult Plain = Machine(*Prog, nullptr).run();
  optimizeProgram(*Prog);
  RunResult Optimized = Machine(*Prog, nullptr).run();
  ASSERT_TRUE(Plain.Ok && Optimized.Ok)
      << Plain.Error << Optimized.Error;
  EXPECT_EQ(Plain.Output, Optimized.Output);
  EXPECT_EQ(Plain.Stats.BasicBlocks, Optimized.Stats.BasicBlocks);
  EXPECT_LE(Optimized.Stats.Instructions, Plain.Stats.Instructions);
}

INSTANTIATE_TEST_SUITE_P(Workloads, OptimizerWorkloadTest,
                         ::testing::Values("dbserver", "vips_pipeline",
                                           "dedup", "md", "smithwa",
                                           "kdtree", "sort_compare",
                                           "producer_consumer"),
                         [](const ::testing::TestParamInfo<const char *>
                                &Info) { return Info.param; });

// --- Quiet-indirect marking (the analysis-layer extension). ---

TEST(QuietIndirect, GoldenDisassembly) {
  // One fixed program exercising the whole quiet story: read-after-write
  // locals, the indirect re-read of a[i], and value caches surviving a
  // frame-safe constant-index store into immutable array storage. The
  // exact mark placement is load-bearing — any change to it must be a
  // deliberate (and re-proven) change to the pass.
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(R"(
    var a[8];
    fn main() {
      var i = 2;
      var x = a[i];
      var y = a[i] + x;
      a[i] = y;
      x = x + y;
      print(x);
      return 0;
    })",
                                               Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  OptimizerStats Stats = optimizeProgram(*Prog);
  EXPECT_GE(Stats.QuietIndirectMarked, 1u);
  EXPECT_EQ(disassembleFunction(Prog->Functions[0], &*Prog),
            "fn main (0 params, 3 locals):\n"
            "     0  basic_block\n"
            "     1  push_const     2\n"
            "     2  store_local    0\n"
            "     3  load_global    16\n"
            "     4  load_local     0  ; quiet\n"
            "     5  load_indirect\n"
            "     6  store_local    1\n"
            "     7  load_global    16  ; quiet\n"
            "     8  load_local     0  ; quiet\n"
            "     9  load_indirect  ; quiet\n"
            "    10  load_local     1  ; quiet\n"
            "    11  add\n"
            "    12  store_local    2\n"
            "    13  load_global    16  ; quiet\n"
            "    14  load_local     0  ; quiet\n"
            "    15  load_local     2  ; quiet\n"
            "    16  store_indirect\n"
            "    17  load_local     1  ; quiet\n"
            "    18  load_local     2  ; quiet\n"
            "    19  add\n"
            "    20  store_local    1  ; quiet\n"
            "    21  load_local     1  ; quiet\n"
            "    22  call_builtin   print, 1 args\n"
            "    23  pop\n"
            "    24  push_const     0\n"
            "    25  return\n"
            "    26  push_const     0\n"
            "    27  return\n");
}

TEST(QuietIndirect, RepeatedWriteIsQuietButFirstWriteIsNot) {
  // A store is quiet only when the address was already *written* this
  // window — write timestamps must advance on the first store even if
  // the cell was read before.
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(R"(
    var a[4];
    fn main() {
      a[1] = 10;
      a[1] = 20;
      return a[1];
    })",
                                               Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  optimizeProgram(*Prog);
  std::vector<int> StoreMarks, LoadMarks;
  for (const Instr &I : Prog->Functions[0].Code) {
    if (I.Opcode == Op::StoreIndirect)
      StoreMarks.push_back(static_cast<int>(I.B));
    if (I.Opcode == Op::LoadIndirect)
      LoadMarks.push_back(static_cast<int>(I.B));
  }
  ASSERT_EQ(StoreMarks.size(), 2u);
  EXPECT_EQ(StoreMarks[0], 0); // first write: event must fire
  EXPECT_EQ(StoreMarks[1], 1); // repeated write: redundant
  ASSERT_EQ(LoadMarks.size(), 1u);
  EXPECT_EQ(LoadMarks[0], 1); // read after write: redundant
}

/// Returns \p Prog with every quiet mark cleared. Instruction streams
/// (and hence scheduling) are identical to the marked program; only
/// event suppression differs.
Program stripQuietMarks(Program Prog) {
  for (Function &F : Prog.Functions)
    for (Instr &I : F.Code)
      switch (I.Opcode) {
      case Op::LoadLocal:
      case Op::StoreLocal:
      case Op::LoadGlobal:
      case Op::StoreGlobal:
      case Op::LoadIndirect:
      case Op::StoreIndirect:
        I.B = 0;
        break;
      default:
        break;
      }
  return Prog;
}

class QuietIndirectWorkloadTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(QuietIndirectWorkloadTest, MarksFireAndProfilesAreByteIdentical) {
  // The acceptance gate for alias-driven marking: the pass marks real
  // indirect accesses on these workloads, and honoring the marks leaves
  // the trms profile byte-identical to running the *same* optimized
  // program with all marks stripped (identical instruction streams, so
  // multithreaded scheduling matches exactly).
  const WorkloadInfo *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  WorkloadParams Params;
  Params.Threads = 3;
  Params.Size = 48;
  // Compile the raw source (compileWorkload would already optimize,
  // making a second pass report zero *new* marks) so Stats reflects
  // one full optimization of virgin bytecode.
  DiagnosticEngine Diags;
  std::optional<Program> Prog =
      compileProgram(W->MakeSource(Params), Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  OptimizerStats Stats = optimizeProgram(*Prog);
  EXPECT_GT(Stats.QuietIndirectMarked, 0u);

  auto profile = [](const Program &P, RunStats *StatsOut) {
    TrmsProfilerOptions Opts;
    Opts.KeepActivationLog = true;
    TrmsProfiler Profiler(Opts);
    EventDispatcher D;
    D.addTool(&Profiler);
    Machine M(P, &D);
    RunResult R = M.run();
    EXPECT_TRUE(R.Ok) << R.Error;
    *StatsOut = R.Stats;
    return Profiler.takeDatabase();
  };

  RunStats Marked, Stripped;
  ProfileDatabase WithMarks = profile(*Prog, &Marked);
  ProfileDatabase NoMarks = profile(stripQuietMarks(*Prog), &Stripped);
  EXPECT_EQ(WithMarks.log(), NoMarks.log());
  EXPECT_EQ(Marked.Instructions, Stripped.Instructions);
  EXPECT_GT(Marked.QuietIndirectSuppressed, 0u);
  EXPECT_EQ(Stripped.QuietIndirectSuppressed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, QuietIndirectWorkloadTest,
                         ::testing::Values("sort_compare", "botsalgn",
                                           "md", "dedup"),
                         [](const ::testing::TestParamInfo<const char *>
                                &Info) { return Info.param; });

TEST(QuietIndirect, RangeCertificateRecoversVariableIndexMarks) {
  // md and dedup re-read their spawn-handle frame arrays with a loop
  // counter index — invisible to the window-local value numbering, but
  // provable by the interprocedural covered-read certificate. The
  // static pass must contribute marks of its own on both.
  for (const char *Name : {"md", "dedup"}) {
    const WorkloadInfo *W = findWorkload(Name);
    ASSERT_NE(W, nullptr) << Name;
    WorkloadParams Params;
    Params.Threads = 3;
    Params.Size = 48;
    DiagnosticEngine Diags;
    std::optional<Program> Prog =
        compileProgram(W->MakeSource(Params), Diags);
    ASSERT_TRUE(Prog.has_value()) << Name;
    OptimizerStats Stats = optimizeProgram(*Prog);
    EXPECT_GT(Stats.RangeQuietMarked, 0u) << Name;
    EXPECT_GE(Stats.QuietIndirectMarked, Stats.RangeQuietMarked) << Name;
  }
}

TEST(QuietIndirect, AnnotatedDisassemblyGolden) {
  // The --annotate-ranges surface: value-range facts on indirect and
  // alloca sites, escape facts on the alloca. Golden like the quiet
  // disassembly above — annotation drift means the analysis changed.
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(R"(
    fn main() {
      var w[4];
      var t = 0;
      while (t < 4) {
        w[t] = t;
        t = t + 1;
      }
      print(w[2]);
      return 0;
    })",
                                               Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  analysis::RangeResult RR = analysis::computeRanges(*Prog);
  analysis::EscapeResult Esc = analysis::computeEscape(*Prog);
  DisasmAnnotations Notes;
  for (const auto &[Key, Site] : RR.Sites)
    Notes[Key] = "range=" + Site.Index.str();
  for (const auto &[Key, Site] : RR.Allocas)
    Notes[Key] = "range=" + Site.Size.str();
  for (const analysis::FrameArray &A : Esc.NeverEscaping) {
    std::string &Note = Notes[{A.Fn, A.AllocaPc}];
    if (!Note.empty())
      Note += " ";
    Note += "noescape cells=" + std::to_string(A.Cells);
  }
  EXPECT_EQ(
      disassembleFunction(Prog->Functions[0], &*Prog, &Notes, 0),
      "fn main (0 params, 2 locals):\n"
      "     0  basic_block\n"
      "     1  push_const     4\n"
      "     2  alloca_array  ; range=[4,4] noescape cells=4\n"
      "     3  store_local    0\n"
      "     4  push_const     0\n"
      "     5  store_local    1\n"
      "     6  basic_block\n"
      "     7  load_local     1\n"
      "     8  push_const     4\n"
      "     9  lt\n"
      "    10  jump_if_false  20\n"
      "    11  load_local     0\n"
      "    12  load_local     1\n"
      "    13  load_local     1\n"
      "    14  store_indirect  ; range=[0,3]\n"
      "    15  load_local     1\n"
      "    16  push_const     1\n"
      "    17  add\n"
      "    18  store_local    1\n"
      "    19  jump           6\n"
      "    20  basic_block\n"
      "    21  load_local     0\n"
      "    22  push_const     2\n"
      "    23  load_indirect  ; range=[2,2]\n"
      "    24  call_builtin   print, 1 args\n"
      "    25  pop\n"
      "    26  push_const     0\n"
      "    27  return\n"
      "    28  push_const     0\n"
      "    29  return\n");
}

} // namespace
