//===- tests/VmOptimizerTest.cpp - Peephole optimizer tests --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The optimizer's contract: semantics preserved exactly (output, exit
// code, runtime errors), profiles bit-identical (the quiet-access pass
// may legitimately drop redundant read/write events from the stream,
// but never ones a tool's counters can observe — see
// Optimizer.h), and strictly fewer interpreted instructions on
// foldable code.
//
//===----------------------------------------------------------------------===//

#include "vm/Optimizer.h"

#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "vm/Compiler.h"
#include "vm/Machine.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

struct Pair {
  RunResult Plain;
  RunResult Optimized;
  OptimizerStats Stats;
};

Pair runBoth(const std::string &Source,
             MachineOptions Opts = MachineOptions()) {
  Pair Out;
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render();
  if (!Prog)
    return Out;
  {
    Machine M(*Prog, nullptr, Opts);
    Out.Plain = M.run();
  }
  Out.Stats = optimizeProgram(*Prog);
  {
    Machine M(*Prog, nullptr, Opts);
    Out.Optimized = M.run();
  }
  return Out;
}

TEST(Optimizer, FoldsConstantExpressions) {
  Pair P = runBoth(R"(
    fn main() {
      var a = 2 + 3 * 4;
      var b = (100 / 5) % 7;
      var c = -(1 + 1);
      var d = !0;
      print(a + b + c + d);
      return 0;
    })");
  ASSERT_TRUE(P.Plain.Ok && P.Optimized.Ok);
  EXPECT_EQ(P.Plain.Output, P.Optimized.Output);
  EXPECT_GT(P.Stats.ConstantsFolded, 3u);
  EXPECT_LT(P.Optimized.Stats.Instructions, P.Plain.Stats.Instructions);
  EXPECT_EQ(P.Optimized.Stats.BasicBlocks, P.Plain.Stats.BasicBlocks);
}

TEST(Optimizer, ResolvesConstantBranches) {
  Pair P = runBoth(R"(
    fn main() {
      var a = 0;
      if (1 == 1) { a = a + 7; }
      if (2 < 1) { a = a + 1000; }
      while (0) { a = 99; }
      print(a);
      return 0;
    })");
  ASSERT_TRUE(P.Plain.Ok && P.Optimized.Ok);
  EXPECT_EQ(P.Plain.Output, "7\n");
  EXPECT_EQ(P.Optimized.Output, "7\n");
  EXPECT_GT(P.Stats.BranchesResolved, 0u);
}

TEST(Optimizer, PreservesDivisionByZeroError) {
  // 1 / 0 must stay a runtime error, not become a silent constant or a
  // compile-time crash.
  Pair P = runBoth("fn main() { return 1 / 0; }");
  EXPECT_FALSE(P.Plain.Ok);
  EXPECT_FALSE(P.Optimized.Ok);
  EXPECT_EQ(P.Plain.Error, P.Optimized.Error);
}

TEST(Optimizer, LoopSemanticsSurviveFolding) {
  Pair P = runBoth(R"(
    fn main() {
      var sum = 0;
      for (var i = 0; i < 3 + 7; i = i + 1) {
        if (i % (1 + 1) == 0) { sum = sum + i; }
        if (i == 2 * 4) { break; }
      }
      print(sum);
      return 0;
    })");
  ASSERT_TRUE(P.Plain.Ok && P.Optimized.Ok);
  EXPECT_EQ(P.Plain.Output, P.Optimized.Output);
}

TEST(Optimizer, EventStreamIsInvariantSingleThreaded) {
  // The optimization contract: per-thread event sequences are untouched,
  // so a single-threaded program's profile is bit-identical. (With
  // threads, the interleaving may shift — scheduler quanta count
  // instructions — like running under a different slice length.)
  const char *Source = R"(
    var table[32];
    fn work(id, n) {
      var acc = 0;
      for (var i = 0; i < n; i = i + 1) {
        acc = acc + table[(i * (2 + 1)) % 32];
        table[i % (16 + 16)] = acc;
      }
      return acc;
    }
    fn main() {
      var r = work(1, 40) + work(0, 4 * 5);
      print(r);
      return 0;
    })";
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  ASSERT_TRUE(Prog.has_value());

  auto profile = [](const Program &P) {
    TrmsProfilerOptions Opts;
    Opts.KeepActivationLog = true;
    TrmsProfiler Profiler(Opts);
    EventDispatcher D;
    D.addTool(&Profiler);
    Machine M(P, &D);
    EXPECT_TRUE(M.run().Ok);
    return Profiler.takeDatabase();
  };

  ProfileDatabase Plain = profile(*Prog);
  OptimizerStats Stats = optimizeProgram(*Prog);
  EXPECT_GT(Stats.InstructionsRemoved, 0u);
  ProfileDatabase Optimized = profile(*Prog);
  EXPECT_EQ(Plain.log(), Optimized.log());
}

class OptimizerWorkloadTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(OptimizerWorkloadTest, SemanticsPreservedOnWorkloads) {
  const WorkloadInfo *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  WorkloadParams Params;
  Params.Threads = 3;
  Params.Size = 48;
  std::optional<Program> Prog = compileWorkload(*W, Params);
  ASSERT_TRUE(Prog.has_value());

  RunResult Plain = Machine(*Prog, nullptr).run();
  optimizeProgram(*Prog);
  RunResult Optimized = Machine(*Prog, nullptr).run();
  ASSERT_TRUE(Plain.Ok && Optimized.Ok)
      << Plain.Error << Optimized.Error;
  EXPECT_EQ(Plain.Output, Optimized.Output);
  EXPECT_EQ(Plain.Stats.BasicBlocks, Optimized.Stats.BasicBlocks);
  EXPECT_LE(Optimized.Stats.Instructions, Plain.Stats.Instructions);
}

INSTANTIATE_TEST_SUITE_P(Workloads, OptimizerWorkloadTest,
                         ::testing::Values("dbserver", "vips_pipeline",
                                           "dedup", "md", "smithwa",
                                           "kdtree", "sort_compare",
                                           "producer_consumer"),
                         [](const ::testing::TestParamInfo<const char *>
                                &Info) { return Info.param; });

} // namespace
