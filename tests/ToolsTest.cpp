//===- tests/ToolsTest.cpp - Comparison tool tests ------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The memcheck/callgrind/helgrind analogues, exercised end-to-end by
// running guest programs with the defects (or their absence) the tools
// exist to detect.
//
//===----------------------------------------------------------------------===//

#include "tools/CallgrindTool.h"
#include "tools/HelgrindTool.h"
#include "tools/MemcheckTool.h"
#include "tools/NulTool.h"

#include "instr/Dispatcher.h"
#include "vm/Compiler.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

/// Runs \p Source under \p Tools; asserts guest-level success unless
/// \p ExpectGuestFailure.
RunResult runUnder(const std::string &Source, std::vector<Tool *> Tools,
                   bool ExpectGuestFailure = false) {
  EventDispatcher Dispatcher;
  for (Tool *T : Tools)
    Dispatcher.addTool(T);
  RunResult R = compileAndRun(Source, &Dispatcher);
  if (!ExpectGuestFailure) {
    EXPECT_TRUE(R.Ok) << R.Error;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Memcheck
//===----------------------------------------------------------------------===//

TEST(Memcheck, CleanProgramHasNoErrors) {
  MemcheckTool Tool;
  runUnder(R"(
    fn main() {
      var p = alloc(8);
      store(p, 1);
      var v = load(p);
      free(p);
      return v;
    })",
           {&Tool});
  EXPECT_EQ(Tool.totalErrors(), 0u);
  EXPECT_EQ(Tool.leakedCells(), 0u);
}

TEST(Memcheck, DetectsUseAfterFree) {
  MemcheckTool Tool;
  runUnder(R"(
    fn main() {
      var p = alloc(4);
      store(p, 5);
      free(p);
      return load(p);
    })",
           {&Tool});
  ASSERT_GE(Tool.errors().size(), 1u);
  EXPECT_EQ(Tool.errors()[0].ErrorKind, MemError::Kind::InvalidRead);
}

TEST(Memcheck, DetectsUninitializedHeapRead) {
  MemcheckTool Tool;
  runUnder(R"(
    fn main() {
      var p = alloc(4);
      var v = load(p + 2); // never written
      store(p, 1);
      var w = load(p);     // fine
      free(p);
      return v + w;
    })",
           {&Tool});
  ASSERT_EQ(Tool.errors().size(), 1u);
  EXPECT_EQ(Tool.errors()[0].ErrorKind, MemError::Kind::UninitializedRead);
}

TEST(Memcheck, DetectsDoubleFreeAndBadFree) {
  MemcheckTool Tool;
  runUnder(R"(
    fn main() {
      var p = alloc(4);
      free(p);
      free(p);
      free(p + 1);
      return 0;
    })",
           {&Tool});
  ASSERT_EQ(Tool.errors().size(), 2u);
  EXPECT_EQ(Tool.errors()[0].ErrorKind, MemError::Kind::DoubleFree);
  EXPECT_EQ(Tool.errors()[1].ErrorKind, MemError::Kind::BadFree);
}

TEST(Memcheck, DetectsLeaks) {
  MemcheckTool Tool;
  runUnder(R"(
    fn main() {
      var kept = alloc(16);
      var freed = alloc(8);
      store(kept, 1);
      free(freed);
      return 0;
    })",
           {&Tool});
  EXPECT_EQ(Tool.leakedCells(), 16u);
  std::string Report = Tool.renderReport();
  EXPECT_NE(Report.find("leaked"), std::string::npos);
}

TEST(Memcheck, KernelFillInitializesBuffer) {
  MemcheckTool Tool;
  runUnder(R"(
    fn main() {
      var p = alloc(8);
      sysread(1, p, 8);
      var v = load(p + 7); // initialized by the kernel
      free(p);
      return v;
    })",
           {&Tool});
  EXPECT_EQ(Tool.totalErrors(), 0u);
}

//===----------------------------------------------------------------------===//
// Callgrind
//===----------------------------------------------------------------------===//

TEST(Callgrind, CountsCallsAndCosts) {
  CallgrindTool Tool;
  DiagnosticEngine Diags;
  auto Prog = compileProgram(R"(
    fn leaf() { return 1; }
    fn mid() { return leaf() + leaf(); }
    fn main() {
      var acc = 0;
      for (var i = 0; i < 10; i = i + 1) { acc = acc + mid(); }
      return acc;
    })",
                             Diags);
  ASSERT_TRUE(Prog.has_value());
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Tool);
  Machine M(*Prog, &Dispatcher);
  ASSERT_TRUE(M.run().Ok);

  RoutineId Leaf = Prog->Symbols.lookup("leaf");
  RoutineId Mid = Prog->Symbols.lookup("mid");
  RoutineId Main = Prog->Symbols.lookup("main");
  const auto &Costs = Tool.routineCosts();
  EXPECT_EQ(Costs.at(Leaf).Calls, 20u);
  EXPECT_EQ(Costs.at(Mid).Calls, 10u);
  EXPECT_EQ(Costs.at(Main).Calls, 1u);
  // main's inclusive cost covers everything; exclusive does not.
  EXPECT_GT(Costs.at(Main).InclusiveBlocks, Costs.at(Main).ExclusiveBlocks);
  EXPECT_EQ(Costs.at(Mid).InclusiveBlocks,
            Costs.at(Mid).ExclusiveBlocks + Costs.at(Leaf).InclusiveBlocks);
  // Call edges.
  EXPECT_EQ(Tool.callEdges().at({Mid, Leaf}), 20u);
  EXPECT_EQ(Tool.callEdges().at({Main, Mid}), 10u);

  std::string Report = Tool.renderReport(&Prog->Symbols);
  EXPECT_NE(Report.find("leaf"), std::string::npos);
}

TEST(Callgrind, RecursionDoesNotDoubleCountInclusive) {
  CallgrindTool Tool;
  DiagnosticEngine Diags;
  auto Prog = compileProgram(R"(
    fn down(n) {
      if (n == 0) { return 0; }
      return down(n - 1);
    }
    fn main() { return down(6); })",
                             Diags);
  ASSERT_TRUE(Prog.has_value());
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Tool);
  Machine M(*Prog, &Dispatcher);
  ASSERT_TRUE(M.run().Ok);
  RoutineId Down = Prog->Symbols.lookup("down");
  const auto &Costs = Tool.routineCosts();
  EXPECT_EQ(Costs.at(Down).Calls, 7u);
  // Inclusive counted only at the outermost activation: it must equal
  // the exclusive total, not 7x it.
  EXPECT_EQ(Costs.at(Down).InclusiveBlocks, Costs.at(Down).ExclusiveBlocks);
}

//===----------------------------------------------------------------------===//
// Helgrind
//===----------------------------------------------------------------------===//

TEST(Helgrind, DetectsUnsynchronizedCounter) {
  HelgrindTool Tool;
  runUnder(R"(
    var counter;
    fn bump(n) {
      var i = 0;
      while (i < n) { counter = counter + 1; i = i + 1; }
      return 0;
    }
    fn main() {
      counter = 0;
      var a = spawn bump(20);
      var b = spawn bump(20);
      join(a); join(b);
      return counter;
    })",
           {&Tool});
  EXPECT_GT(Tool.racesDetected(), 0u);
  EXPECT_NE(Tool.renderReport().find("race"), std::string::npos);
}

TEST(Helgrind, LockedCounterIsClean) {
  HelgrindTool Tool;
  runUnder(R"(
    var counter;
    var lk;
    fn bump(n) {
      var i = 0;
      while (i < n) {
        lock_acquire(lk);
        counter = counter + 1;
        lock_release(lk);
        i = i + 1;
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      counter = 0;
      var a = spawn bump(20);
      var b = spawn bump(20);
      join(a); join(b);
      return counter;
    })",
           {&Tool});
  EXPECT_EQ(Tool.racesDetected(), 0u);
}

TEST(Helgrind, CreateAndJoinOrderAccesses) {
  HelgrindTool Tool;
  runUnder(R"(
    var cell;
    fn child() { cell = cell + 5; return 0; }
    fn main() {
      cell = 1;                 // before create: ordered
      var t = spawn child();
      var v = join(t);
      cell = cell * 2;          // after join: ordered
      return cell + v;
    })",
           {&Tool});
  EXPECT_EQ(Tool.racesDetected(), 0u);
}

TEST(Helgrind, SemaphorePairingOrdersProducerConsumer) {
  HelgrindTool Tool;
  runUnder(R"(
    var x;
    var emptySem;
    var fullSem;
    fn producer(n) {
      var i = 0;
      while (i < n) {
        sem_wait(emptySem);
        x = i;
        sem_post(fullSem);
        i = i + 1;
      }
      return 0;
    }
    fn consumer(n) {
      var sum = 0;
      var i = 0;
      while (i < n) {
        sem_wait(fullSem);
        sum = sum + x;
        sem_post(emptySem);
        i = i + 1;
      }
      return sum;
    }
    fn main() {
      emptySem = sem_create(1);
      fullSem = sem_create(0);
      var p = spawn producer(15);
      var c = spawn consumer(15);
      join(p);
      return join(c);
    })",
           {&Tool});
  EXPECT_EQ(Tool.racesDetected(), 0u);
}

//===----------------------------------------------------------------------===//
// Tool plumbing
//===----------------------------------------------------------------------===//

TEST(ToolPlumbing, MultipleToolsShareOneRun) {
  NulTool Nul;
  MemcheckTool Memcheck;
  CallgrindTool Callgrind;
  HelgrindTool Helgrind;
  runUnder(R"(
    fn work(n) {
      var a[8];
      var i = 0;
      while (i < n) { a[i % 8] = i; i = i + 1; }
      return a[0];
    }
    fn main() {
      var t = spawn work(30);
      work(10);
      return join(t);
    })",
           {&Nul, &Memcheck, &Callgrind, &Helgrind});
  EXPECT_GT(Nul.eventsSeen(), 100u);
  EXPECT_EQ(Memcheck.totalErrors(), 0u);
  EXPECT_EQ(Callgrind.routineCosts().size(), 2u);
  EXPECT_EQ(Helgrind.racesDetected(), 0u);
}

TEST(ToolPlumbing, FootprintsAreReported) {
  MemcheckTool Memcheck;
  HelgrindTool Helgrind;
  runUnder(R"(
    var big[4000];
    fn main() {
      var i = 0;
      while (i < 4000) { big[i] = i; i = i + 1; }
      return 0;
    })",
           {&Memcheck, &Helgrind});
  EXPECT_GT(Memcheck.memoryFootprintBytes(), 4000u);
  EXPECT_GT(Helgrind.memoryFootprintBytes(), 4000u * 8u);
}

} // namespace

//===----------------------------------------------------------------------===//
// DRD (lockset detector)
//===----------------------------------------------------------------------===//

#include "tools/CctTool.h"
#include "tools/DrdTool.h"
#include "tools/ToolRegistry.h"

namespace {

TEST(Drd, DetectsUnsynchronizedCounter) {
  DrdTool Tool;
  runUnder(R"(
    var counter;
    fn bump(n) {
      var i = 0;
      while (i < n) { counter = counter + 1; i = i + 1; }
      return 0;
    }
    fn main() {
      counter = 0;
      var a = spawn bump(20);
      var b = spawn bump(20);
      join(a); join(b);
      return counter;
    })",
           {&Tool});
  EXPECT_GT(Tool.racesDetected(), 0u);
}

TEST(Drd, LockedCounterIsClean) {
  // Note main's final read also takes the lock: the lockset model cannot
  // see join-ordering, so consistent lock discipline is what it checks.
  DrdTool Tool;
  runUnder(R"(
    var counter;
    var lk;
    fn bump(n) {
      var i = 0;
      while (i < n) {
        lock_acquire(lk);
        counter = counter + 1;
        lock_release(lk);
        i = i + 1;
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      counter = 0;
      var a = spawn bump(20);
      var b = spawn bump(20);
      join(a); join(b);
      lock_acquire(lk);
      var result = counter;
      lock_release(lk);
      return result;
    })",
           {&Tool});
  EXPECT_EQ(Tool.racesDetected(), 0u);
}

TEST(Drd, FlagsJoinOrderedReadWithoutLock) {
  // The complementary case: reading the counter after join *without*
  // the lock is safe (helgrind agrees) but outside the lockset
  // discipline, so drd flags it — the documented Eraser trade-off.
  DrdTool Drd;
  HelgrindTool Helgrind;
  runUnder(R"(
    var counter;
    var lk;
    fn bump(n) {
      var i = 0;
      while (i < n) {
        lock_acquire(lk);
        counter = counter + 1;
        lock_release(lk);
        i = i + 1;
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      counter = 0;
      var a = spawn bump(5);
      join(a);
      return counter; // no lock: outside the discipline
    })",
           {&Drd, &Helgrind});
  EXPECT_GT(Drd.racesDetected(), 0u);
  EXPECT_EQ(Helgrind.racesDetected(), 0u);
}

TEST(Drd, InitializeThenShareUnderLockIsClean) {
  // Eraser's initialization refinement: lock-free init by one thread
  // followed by locked sharing must not be flagged.
  DrdTool Tool;
  runUnder(R"(
    var data[16];
    var lk;
    fn consumer() {
      lock_acquire(lk);
      var sum = data[3] + data[7];
      lock_release(lk);
      return sum;
    }
    fn main() {
      lk = lock_create();
      var i = 0;
      while (i < 16) { data[i] = i; i = i + 1; } // init without lock
      var t = spawn consumer();
      lock_acquire(lk);
      data[3] = 99;
      lock_release(lk);
      return join(t);
    })",
           {&Tool});
  EXPECT_EQ(Tool.racesDetected(), 0u);
}

TEST(Drd, FlagsSemaphoreOnlySynchronization) {
  // The characteristic lockset weakness: semaphore-paired producer and
  // consumer are correctly ordered (helgrind agrees) but hold no common
  // mutex, so the lockset model reports the cell. Both behaviours are
  // intended — they document the detector trade-off.
  const char *Source = R"(
    var x;
    var emptySem;
    var fullSem;
    fn producer(n) {
      var i = 0;
      while (i < n) {
        sem_wait(emptySem);
        x = i;
        sem_post(fullSem);
        i = i + 1;
      }
      return 0;
    }
    fn consumer(n) {
      var sum = 0;
      var i = 0;
      while (i < n) {
        sem_wait(fullSem);
        sum = sum + x;
        sem_post(emptySem);
        i = i + 1;
      }
      return sum;
    }
    fn main() {
      emptySem = sem_create(1);
      fullSem = sem_create(0);
      var p = spawn producer(10);
      var c = spawn consumer(10);
      join(p);
      return join(c);
    })";
  DrdTool Drd;
  HelgrindTool Helgrind;
  runUnder(Source, {&Drd, &Helgrind});
  EXPECT_GT(Drd.racesDetected(), 0u) << "lockset model should flag this";
  EXPECT_EQ(Helgrind.racesDetected(), 0u)
      << "happens-before model should not";
}

//===----------------------------------------------------------------------===//
// CCT (calling-context tree)
//===----------------------------------------------------------------------===//

TEST(Cct, DistinguishesContextsByPath) {
  CctTool Tool;
  DiagnosticEngine Diags;
  auto Prog = compileProgram(R"(
    fn leaf() { return 1; }
    fn viaA() { return leaf() + leaf(); }
    fn viaB() { return leaf(); }
    fn main() { return viaA() + viaB(); })",
                             Diags);
  ASSERT_TRUE(Prog.has_value());
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Tool);
  Machine M(*Prog, &Dispatcher);
  ASSERT_TRUE(M.run().Ok);

  // Contexts: main, main>viaA, main>viaA>leaf, main>viaB, main>viaB>leaf.
  EXPECT_EQ(Tool.contextCount(), 5u);
  uint64_t LeafViaA = 0, LeafViaB = 0;
  for (CctTool::NodeIndex I = 1; I < Tool.nodes().size(); ++I) {
    std::string Path = Tool.contextPath(I, &Prog->Symbols);
    if (Path == "main > viaA > leaf")
      LeafViaA = Tool.nodes()[I].Calls;
    if (Path == "main > viaB > leaf")
      LeafViaB = Tool.nodes()[I].Calls;
  }
  EXPECT_EQ(LeafViaA, 2u);
  EXPECT_EQ(LeafViaB, 1u);

  std::string Report = Tool.renderReport(&Prog->Symbols);
  EXPECT_NE(Report.find("main > viaA > leaf"), std::string::npos);
}

TEST(Cct, InclusiveCoversDescendants) {
  CctTool Tool;
  DiagnosticEngine Diags;
  auto Prog = compileProgram(R"(
    fn inner() {
      var i = 0;
      while (i < 5) { i = i + 1; }
      return i;
    }
    fn outer() { return inner(); }
    fn main() { return outer(); })",
                             Diags);
  ASSERT_TRUE(Prog.has_value());
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Tool);
  Machine M(*Prog, &Dispatcher);
  ASSERT_TRUE(M.run().Ok);
  for (CctTool::NodeIndex I = 1; I < Tool.nodes().size(); ++I) {
    if (Tool.contextPath(I, &Prog->Symbols) == "main > outer") {
      EXPECT_GT(Tool.inclusiveBlocks(I),
                Tool.nodes()[I].ExclusiveBlocks);
      return;
    }
  }
  FAIL() << "context main > outer not found";
}

//===----------------------------------------------------------------------===//
// Tool registry
//===----------------------------------------------------------------------===//

TEST(Registry, CreatesEveryRegisteredTool) {
  for (const std::string &Name : allToolNames()) {
    auto T = makeTool(Name);
    ASSERT_NE(T, nullptr) << Name;
    EXPECT_TRUE(knownToolName(Name));
  }
  EXPECT_TRUE(knownToolName("native"));
  EXPECT_FALSE(knownToolName("bogus"));
  EXPECT_EQ(makeTool("bogus"), nullptr);
}

TEST(Registry, RendersReportsForEveryTool) {
  for (const std::string &Name : allToolNames()) {
    auto T = makeTool(Name);
    ASSERT_NE(T, nullptr);
    EventDispatcher Dispatcher;
    Dispatcher.addTool(T.get());
    RunResult R = compileAndRun(
        "fn work(n) { var s = 0; for (var i = 0; i < n; i = i + 1) "
        "{ s = s + i; } return s; } "
        "fn main() { var t = spawn work(10); return work(5) + join(t); }",
        &Dispatcher);
    ASSERT_TRUE(R.Ok) << Name << ": " << R.Error;
    std::string Report = renderToolReport(*T, nullptr);
    EXPECT_FALSE(Report.empty()) << Name;
  }
}

} // namespace
