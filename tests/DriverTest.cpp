//===- tests/DriverTest.cpp - isprof CLI integration tests ---------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the isprof command-line driver: each test shells
// out to the real binary (path injected by CMake) against the shipped
// guest example programs and checks exit codes and output fragments.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceStream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

#ifndef ISPROF_BINARY
#error "ISPROF_BINARY must be defined by the build"
#endif
#ifndef ISPROF_GUEST_DIR
#error "ISPROF_GUEST_DIR must be defined by the build"
#endif

struct CommandResult {
  int ExitCode = -1;
  std::string Output;
};

/// Runs the driver with \p Args, capturing combined stdout+stderr.
CommandResult runDriver(const std::string &Args) {
  std::string OutPath =
      ::testing::TempDir() + "isprof_driver_test_output.txt";
  std::string Command = std::string(ISPROF_BINARY) + " " + Args + " > " +
                        OutPath + " 2>&1";
  int Status = std::system(Command.c_str());
  CommandResult Result;
  Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  std::ifstream Stream(OutPath);
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  Result.Output = Buffer.str();
  std::remove(OutPath.c_str());
  return Result;
}

std::string guest(const char *Name) {
  return std::string(ISPROF_GUEST_DIR) + "/" + Name;
}

TEST(Driver, ListShowsToolsAndWorkloads) {
  CommandResult R = runDriver("list");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("aprof-trms"), std::string::npos);
  EXPECT_NE(R.Output.find("dbserver"), std::string::npos);
  EXPECT_NE(R.Output.find("producer_consumer"), std::string::npos);
}

TEST(Driver, RunProfilesQuickstart) {
  CommandResult R = runDriver("run " + guest("quickstart.mini"));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("--- aprof-trms ---"), std::string::npos);
  EXPECT_NE(R.Output.find("insertionSort"), std::string::npos);
  EXPECT_NE(R.Output.find("mergeSort"), std::string::npos);
}

TEST(Driver, RaceDetectorsDisagreeAsDesigned) {
  CommandResult R =
      runDriver("run " + guest("race.mini") + " --tools=helgrind,drd");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  // Both report the racy counter; address 16 is the first global.
  EXPECT_NE(R.Output.find("possible data race"), std::string::npos);
  EXPECT_NE(R.Output.find("empty candidate lockset"), std::string::npos);
}

TEST(Driver, MemcheckFindsPlantedErrors) {
  CommandResult R =
      runDriver("run " + guest("leak.mini") + " --tools=memcheck");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("uninitialized read"), std::string::npos);
  EXPECT_NE(R.Output.find("invalid read"), std::string::npos);
  EXPECT_NE(R.Output.find("leaked"), std::string::npos);
}

TEST(Driver, RecordReplayRoundTrip) {
  std::string TracePath = ::testing::TempDir() + "isprof_driver_trace.bin";
  CommandResult Record = runDriver("run " + guest("stream.mini") +
                                   " --record=" + TracePath);
  EXPECT_EQ(Record.ExitCode, 0) << Record.Output;
  CommandResult Replay =
      runDriver("replay " + TracePath + " --tools=aprof-rms,aprof-trms");
  EXPECT_EQ(Replay.ExitCode, 0) << Replay.Output;
  EXPECT_NE(Replay.Output.find("consumeStream"), std::string::npos);
  std::remove(TracePath.c_str());
}

TEST(Driver, HtmlReportIsWritten) {
  std::string HtmlPath = ::testing::TempDir() + "isprof_driver_report.html";
  CommandResult R = runDriver("run " + guest("quickstart.mini") +
                              " --html=" + HtmlPath);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::ifstream Html(HtmlPath);
  ASSERT_TRUE(Html.good());
  std::ostringstream Buffer;
  Buffer << Html.rdbuf();
  EXPECT_NE(Buffer.str().find("<svg"), std::string::npos);
  std::remove(HtmlPath.c_str());
}

TEST(Driver, CheckAndDisasm) {
  CommandResult Check = runDriver("check " + guest("stream.mini"));
  EXPECT_EQ(Check.ExitCode, 0);
  EXPECT_NE(Check.Output.find("ok ("), std::string::npos);

  CommandResult Disasm = runDriver("disasm " + guest("stream.mini"));
  EXPECT_EQ(Disasm.ExitCode, 0);
  EXPECT_NE(Disasm.Output.find("fn consumeStream"), std::string::npos);
  EXPECT_NE(Disasm.Output.find("call_builtin   sysread"),
            std::string::npos);
}

TEST(Driver, VerifyBytecodeAcceptsShippedExamples) {
  for (const char *Name : {"quickstart.mini", "race.mini", "locked.mini",
                           "leak.mini", "stream.mini"}) {
    CommandResult R =
        runDriver("check " + guest(Name) + " --verify-bytecode");
    EXPECT_EQ(R.ExitCode, 0) << Name << "\n" << R.Output;
    EXPECT_NE(R.Output.find("bytecode verified"), std::string::npos)
        << Name;
    // Optimized bytecode must verify too (quiet marks included).
    CommandResult Opt = runDriver("check " + guest(Name) +
                                  " --verify-bytecode --optimize");
    EXPECT_EQ(Opt.ExitCode, 0) << Name << "\n" << Opt.Output;
  }
}

TEST(Driver, LintFlagsRaceAndStaysSilentOnLockedExample) {
  // The static lint agrees with the dynamic drd tool on the shipped
  // pair: race.mini's unsynchronized counter (the first global, address
  // 16) is flagged; the lock-disciplined locked.mini is clean.
  CommandResult Racy = runDriver("check " + guest("race.mini") + " --lint");
  EXPECT_EQ(Racy.ExitCode, 0) << Racy.Output;
  EXPECT_NE(Racy.Output.find("lint: 1 location(s) with empty candidate "
                             "lockset"),
            std::string::npos)
      << Racy.Output;
  EXPECT_NE(Racy.Output.find("possible race at address 16"),
            std::string::npos);

  CommandResult Clean =
      runDriver("check " + guest("locked.mini") + " --lint");
  EXPECT_EQ(Clean.ExitCode, 0) << Clean.Output;
  EXPECT_NE(Clean.Output.find("lint: 0 location(s) with empty candidate "
                              "lockset"),
            std::string::npos)
      << Clean.Output;
  EXPECT_EQ(Clean.Output.find("possible race"), std::string::npos);
}

TEST(Driver, LintRunsUnderRunCommandToo) {
  CommandResult R = runDriver("run " + guest("race.mini") +
                              " --lint --tools=drd");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  // Static prediction and dynamic confirmation in one invocation.
  EXPECT_NE(R.Output.find("lint: 1 location(s)"), std::string::npos);
  EXPECT_NE(R.Output.find("drd: 1 location(s)"), std::string::npos);
}

TEST(Driver, BoundsLintFlagsSeededExampleAndStaysCleanElsewhere) {
  // The seeded example's store index is rand(4) + 6 on a 4-cell array:
  // definitely out of bounds, but only the value-range lint can say so
  // (the verifier needs a single foldable constant). Exit stays 0 —
  // the lint reports, `check` still succeeds.
  CommandResult Oob =
      runDriver("check " + guest("oob.mini") + " --lint-bounds");
  EXPECT_EQ(Oob.ExitCode, 0) << Oob.Output;
  EXPECT_NE(Oob.Output.find("bounds lint: 1 warning(s)"),
            std::string::npos)
      << Oob.Output;
  EXPECT_NE(Oob.Output.find(
                "store index [6,9] is out of bounds for array 'a'"),
            std::string::npos)
      << Oob.Output;

  for (const char *Name : {"locked.mini", "joined.mini"}) {
    CommandResult Clean =
        runDriver("check " + guest(Name) + " --lint-bounds");
    EXPECT_EQ(Clean.ExitCode, 0) << Name << Clean.Output;
    EXPECT_NE(Clean.Output.find("bounds lint: 0 warning(s)"),
              std::string::npos)
        << Name << Clean.Output;
  }
}

TEST(Driver, GrowthCheckAddsAgreementColumns) {
  // --growth-check cross-checks each routine's fitted alpha against the
  // static loop-nest degree: quicksort-shaped code agrees, and routines
  // without a valid fit show "-" rather than a spurious verdict.
  CommandResult R = runDriver("run " + guest("quickstart.mini") +
                              " --growth-check --tools=aprof-rms");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("static  agree"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("O(n^2)"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("yes"), std::string::npos) << R.Output;

  // The workload command grows the same columns.
  CommandResult W = runDriver(
      "workload producer_consumer --size=32 --growth-check");
  EXPECT_EQ(W.ExitCode, 0) << W.Output;
  EXPECT_NE(W.Output.find("static  agree"), std::string::npos) << W.Output;
}

TEST(Driver, AnnotateRangesDisassembly) {
  CommandResult Plain = runDriver("disasm " + guest("indexed.mini"));
  EXPECT_EQ(Plain.ExitCode, 0) << Plain.Output;
  EXPECT_EQ(Plain.Output.find("; range="), std::string::npos)
      << Plain.Output;

  CommandResult Notes =
      runDriver("disasm " + guest("indexed.mini") + " --annotate-ranges");
  EXPECT_EQ(Notes.ExitCode, 0) << Notes.Output;
  EXPECT_NE(Notes.Output.find("; range=[4,4] noescape cells=4"),
            std::string::npos)
      << Notes.Output;
  EXPECT_NE(Notes.Output.find("; range=[0,3]"), std::string::npos)
      << Notes.Output;
}

TEST(Driver, IndexedExampleRecoversRangeQuietMark) {
  // The shipped indexed.mini exists to prove the covered-read
  // certificate fires on real guest code: one variable-index join
  // re-read earns a static quiet mark.
  CommandResult R = runDriver("run " + guest("indexed.mini") +
                              " --optimize --stats=json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"analysis.range_quiet_marked\": 1"),
            std::string::npos)
      << R.Output;
}

TEST(Driver, WorkloadCommand) {
  CommandResult R = runDriver("workload producer_consumer --size=32");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("consumer"), std::string::npos);
}

TEST(Driver, ParallelToolsOutputMatchesSerial) {
  // Parallel tool fan-out must not change a single output byte.
  std::string Args = "run " + guest("quickstart.mini") +
                     " --tools=aprof-trms,aprof-rms,memcheck,callgrind";
  CommandResult Serial = runDriver(Args);
  ASSERT_EQ(Serial.ExitCode, 0) << Serial.Output;
  for (const char *Flag : {" --parallel-tools", " --parallel-tools=2"}) {
    CommandResult Parallel = runDriver(Args + Flag);
    EXPECT_EQ(Parallel.ExitCode, 0) << Parallel.Output;
    EXPECT_EQ(Parallel.Output, Serial.Output) << Flag;
  }
}

TEST(Driver, ParallelToolsRejectsBadValues) {
  std::string Args = "run " + guest("quickstart.mini");
  for (const char *Flag :
       {" --parallel-tools=bogus", " --parallel-tools=0",
        " --parallel-tools=-3", " --parallel-tools=1000"}) {
    CommandResult R = runDriver(Args + Flag);
    EXPECT_NE(R.ExitCode, 0) << Flag;
    EXPECT_NE(R.Output.find("invalid --parallel-tools"), std::string::npos)
        << Flag << ": " << R.Output;
  }
}

TEST(Driver, StreamRecordReplayRoundTrip) {
  // Chunked-stream recording must replay to the byte-identical profile
  // a direct run produces (the report sections; the run/replay banners
  // around them legitimately differ).
  auto Section = [](const std::string &Output) {
    size_t At = Output.find("--- aprof-trms ---");
    EXPECT_NE(At, std::string::npos) << Output;
    return At == std::string::npos ? std::string() : Output.substr(At);
  };
  std::string StreamPath = ::testing::TempDir() + "isprof_driver_stream.strm";
  std::string Args = "run " + guest("stream.mini") + " --tools=aprof-trms";
  CommandResult Direct = runDriver(Args);
  ASSERT_EQ(Direct.ExitCode, 0) << Direct.Output;
  CommandResult Record = runDriver(Args + " --record-stream=" + StreamPath);
  ASSERT_EQ(Record.ExitCode, 0) << Record.Output;
  EXPECT_NE(Record.Output.find("[stream:"), std::string::npos);
  EXPECT_EQ(Section(Record.Output), Section(Direct.Output));

  // Explicit flag and positional auto-detection both replay the stream.
  for (std::string ReplayArgs :
       {"replay --replay-stream=" + StreamPath + " --tools=aprof-trms",
        "replay " + StreamPath + " --tools=aprof-trms"}) {
    CommandResult Replay = runDriver(ReplayArgs);
    ASSERT_EQ(Replay.ExitCode, 0) << Replay.Output;
    EXPECT_NE(Replay.Output.find("[replayed"), std::string::npos);
    EXPECT_EQ(Section(Replay.Output), Section(Direct.Output)) << ReplayArgs;
  }
  std::remove(StreamPath.c_str());
}

TEST(Driver, ShardedShadowOutputMatchesGlobal) {
  // --shadow-shards must not change a single output byte.
  std::string Args = "run " + guest("stream.mini") + " --tools=aprof-trms";
  CommandResult Global = runDriver(Args);
  ASSERT_EQ(Global.ExitCode, 0) << Global.Output;
  for (const char *Flag : {" --shadow-shards=4", " --shadow-shards=16"}) {
    CommandResult Sharded = runDriver(Args + Flag);
    EXPECT_EQ(Sharded.ExitCode, 0) << Sharded.Output;
    EXPECT_EQ(Sharded.Output, Global.Output) << Flag;
  }
}

TEST(Driver, StreamingFlagsRejectBadValues) {
  std::string Args = "run " + guest("quickstart.mini");
  for (const char *Flag :
       {" --shadow-shards=0", " --shadow-shards=3", " --shadow-shards=512",
        " --shadow-shards=bogus"}) {
    CommandResult R = runDriver(Args + Flag);
    EXPECT_NE(R.ExitCode, 0) << Flag;
    EXPECT_NE(R.Output.find("invalid --shadow-shards"), std::string::npos)
        << Flag << ": " << R.Output;
  }
  for (const char *Flag :
       {" --batch-capacity=0", " --batch-capacity=100",
        " --batch-capacity=131072", " --batch-capacity=bogus"}) {
    CommandResult R = runDriver(Args + Flag);
    EXPECT_NE(R.ExitCode, 0) << Flag;
    EXPECT_NE(R.Output.find("invalid --batch-capacity"), std::string::npos)
        << Flag << ": " << R.Output;
  }
  // Replaying a corrupt stream is a clean diagnostic, not a crash.
  std::string BadPath = ::testing::TempDir() + "isprof_bad_stream.strm";
  {
    std::ofstream Bad(BadPath, std::ios::binary);
    Bad << "ISPSTM01 this is not a valid stream tail";
  }
  CommandResult R = runDriver("replay " + BadPath + " --tools=aprof-trms");
  EXPECT_NE(R.ExitCode, 0);
  std::remove(BadPath.c_str());
}

TEST(Driver, BatchCapacityOutputMatchesDefault) {
  std::string Args = "run " + guest("quickstart.mini") +
                     " --tools=aprof-trms,memcheck";
  CommandResult Default = runDriver(Args);
  ASSERT_EQ(Default.ExitCode, 0) << Default.Output;
  for (const char *Flag : {" --batch-capacity=16", " --batch-capacity=4096"}) {
    CommandResult Tuned = runDriver(Args + Flag);
    EXPECT_EQ(Tuned.ExitCode, 0) << Tuned.Output;
    EXPECT_EQ(Tuned.Output, Default.Output) << Flag;
  }
}

TEST(Driver, ParallelReplayOutputMatchesSerial) {
  // The tentpole contract at CLI level: parallel stream replay is
  // byte-for-byte the serial replay, across shard and worker counts.
  std::string StreamPath =
      ::testing::TempDir() + "isprof_driver_preplay.strm";
  ASSERT_EQ(runDriver("run " + guest("stream.mini") +
                      " --tools=aprof-trms --record-stream=" + StreamPath)
                .ExitCode,
            0);
  std::string Base = "replay " + StreamPath + " --tools=aprof-trms";
  CommandResult Serial = runDriver(Base);
  ASSERT_EQ(Serial.ExitCode, 0) << Serial.Output;
  for (const char *Shards :
       {"", " --shadow-shards=4", " --shadow-shards=16"}) {
    for (const char *Workers : {" --replay-workers=1", " --replay-workers=2",
                                " --replay-workers=4"}) {
      CommandResult Parallel = runDriver(Base + Shards + Workers);
      EXPECT_EQ(Parallel.ExitCode, 0) << Parallel.Output;
      EXPECT_EQ(Parallel.Output, Serial.Output) << Shards << Workers;
    }
  }

  // The environment fallback is soft: an ineligible invocation (two
  // tools) silently stays serial instead of erroring.
  setenv("ISPROF_REPLAY_WORKERS", "2", 1);
  CommandResult EnvMulti = runDriver("replay " + StreamPath +
                                     " --tools=aprof-rms,aprof-trms");
  EXPECT_EQ(EnvMulti.ExitCode, 0) << EnvMulti.Output;
  CommandResult EnvEligible = runDriver(Base);
  EXPECT_EQ(EnvEligible.ExitCode, 0) << EnvEligible.Output;
  EXPECT_EQ(EnvEligible.Output, Serial.Output);
  unsetenv("ISPROF_REPLAY_WORKERS");
  std::remove(StreamPath.c_str());
}

TEST(Driver, ReplayWorkersRejectsBadValuesAndConfigs) {
  std::string StreamPath =
      ::testing::TempDir() + "isprof_driver_preplay_flags.strm";
  ASSERT_EQ(runDriver("run " + guest("stream.mini") +
                      " --tools=aprof-trms --record-stream=" + StreamPath)
                .ExitCode,
            0);
  std::string Base = "replay " + StreamPath;
  for (const char *Flag : {" --replay-workers=abc", " --replay-workers=33",
                           " --replay-workers=-1"}) {
    CommandResult R = runDriver(Base + " --tools=aprof-trms" + Flag);
    EXPECT_NE(R.ExitCode, 0) << Flag;
    EXPECT_NE(R.Output.find("invalid --replay-workers"), std::string::npos)
        << Flag << ": " << R.Output;
  }
  // Explicit workers with an incompatible configuration is a hard
  // error, not a silent serial run.
  for (std::string Args :
       {Base + " --tools=aprof-rms --replay-workers=2",
        Base + " --tools=aprof-trms,memcheck --replay-workers=2",
        Base + " --tools=aprof-trms --parallel-tools=2 --replay-workers=2"}) {
    CommandResult R = runDriver(Args);
    EXPECT_EQ(R.ExitCode, 2) << Args << ": " << R.Output;
    EXPECT_NE(R.Output.find("--replay-workers requires"), std::string::npos)
        << Args << ": " << R.Output;
  }
  std::remove(StreamPath.c_str());
}

TEST(Driver, ReplayStreamErrorNamesChunk) {
  // A decode failure mid-stream names the failing chunk, on both the
  // serial and the parallel path.
  std::vector<isp::EventRecord> Events;
  uint64_t Time = 1;
  Events.push_back(isp::EventRecord::threadStart(0, Time++, 0));
  Events.push_back(isp::EventRecord::call(0, Time++, 1));
  for (unsigned I = 0; I != 400; ++I) {
    Events.push_back(isp::EventRecord::write(0, Time++, I, 1));
    Events.push_back(isp::EventRecord::read(0, Time++, I, 1));
  }
  Events.push_back(isp::EventRecord::ret(0, Time++, 1, 0));
  Events.push_back(isp::EventRecord::threadEnd(0, Time++));
  std::string Path = ::testing::TempDir() + "isprof_driver_badchunk.strm";
  isp::TraceStreamOptions Opts;
  Opts.ChunkBytes = 256;
  isp::TraceStreamWriter Writer;
  ASSERT_TRUE(Writer.open(Path, {{1, "work"}}, Opts)) << Writer.error();
  for (const isp::EventRecord &E : Events)
    Writer.append(E);
  ASSERT_TRUE(Writer.close()) << Writer.error();

  // Clobber the first event kind byte of chunk 1 (header = magic +
  // routine table; chunks are u32 length + count varint + payload).
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Bytes = Buffer.str();
  }
  size_t Header = 8 + 1 + (1 + 1 + 4); // magic, count, id + len + "work"
  uint32_t Len0 = 0;
  for (int I = 0; I != 4; ++I)
    Len0 |= static_cast<uint32_t>(
                static_cast<unsigned char>(Bytes[Header + I]))
            << (8 * I);
  size_t Chunk1KindByte = Header + 4 + Len0 + 4 + 1;
  ASSERT_LT(Chunk1KindByte, Bytes.size());
  Bytes[Chunk1KindByte] = static_cast<char>(0xff);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  for (const char *Extra : {"", " --replay-workers=2"}) {
    CommandResult R =
        runDriver("replay " + Path + " --tools=aprof-trms" + Extra);
    EXPECT_NE(R.ExitCode, 0) << Extra;
    EXPECT_NE(R.Output.find("chunk 1:"), std::string::npos)
        << Extra << ": " << R.Output;
    EXPECT_NE(R.Output.find("invalid event kind"), std::string::npos)
        << Extra << ": " << R.Output;
  }
  std::remove(Path.c_str());
}

TEST(Driver, ErrorsAreClean) {
  EXPECT_NE(runDriver("run /nonexistent.mini").ExitCode, 0);
  EXPECT_NE(runDriver("frobnicate").ExitCode, 0);
  EXPECT_NE(runDriver("run " + guest("stream.mini") + " --tools=bogus")
                .ExitCode,
            0);
  // A guest compile error must surface the diagnostics.
  std::string BadPath = ::testing::TempDir() + "isprof_bad.mini";
  {
    std::ofstream Bad(BadPath);
    Bad << "fn main() { return nope; }";
  }
  CommandResult R = runDriver("run " + BadPath);
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("undeclared variable"), std::string::npos);
  std::remove(BadPath.c_str());
}

} // namespace

namespace {

TEST(Driver, DiffDetectsPlantedRegression) {
  std::string Dir = ::testing::TempDir();
  std::string V1 = Dir + "isprof_diff_v1.mini";
  std::string V2 = Dir + "isprof_diff_v2.mini";
  {
    std::ofstream F(V1);
    F << "fn scan(a, n) { var s = 0; for (var i = 0; i < n; i = i + 1) "
         "{ s = s + a[i]; } return s; }\n"
         "fn main() { for (var n = 4; n <= 64; n = n * 2) { var a[n]; "
         "for (var i = 0; i < n; i = i + 1) { a[i] = i; } "
         "print(scan(a, n)); } return 0; }\n";
  }
  {
    std::ofstream F(V2);
    F << "fn scan(a, n) { var s = 0; for (var i = 0; i < n; i = i + 1) "
         "{ for (var j = 0; j < n; j = j + 1) { s = s + a[j]; } } "
         "return s / n; }\n"
         "fn main() { for (var n = 4; n <= 64; n = n * 2) { var a[n]; "
         "for (var i = 0; i < n; i = i + 1) { a[i] = i; } "
         "print(scan(a, n)); } return 0; }\n";
  }
  std::string T1 = Dir + "isprof_diff_v1.trc";
  std::string T2 = Dir + "isprof_diff_v2.trc";
  ASSERT_EQ(runDriver("run " + V1 + " --record=" + T1).ExitCode, 0);
  ASSERT_EQ(runDriver("run " + V2 + " --record=" + T2).ExitCode, 0);

  CommandResult Same = runDriver("diff " + T1 + " " + T1);
  EXPECT_EQ(Same.ExitCode, 0) << Same.Output;

  CommandResult Diff = runDriver("diff " + T1 + " " + T2);
  EXPECT_EQ(Diff.ExitCode, 3) << Diff.Output; // regressions found
  EXPECT_NE(Diff.Output.find("GROWTH REGRESSION"), std::string::npos);
  EXPECT_NE(Diff.Output.find("O(n) -> O(n^2)"), std::string::npos);

  for (const std::string &Path : {V1, V2, T1, T2})
    std::remove(Path.c_str());
}

// --- Fleet collector. ---

/// Records \p Guest as a chunked stream at \p Path; returns success.
bool recordStream(const std::string &Guest, const std::string &Path,
                  const std::string &Extra = "") {
  return runDriver("run " + Guest + " --tools=aprof-trms --record-stream=" +
                   Path + Extra)
             .ExitCode == 0;
}

TEST(Driver, CollectRollsUpExplicitStreams) {
  std::string A = ::testing::TempDir() + "isprof_collect_a.strm";
  std::string B = ::testing::TempDir() + "isprof_collect_b.strm";
  ASSERT_TRUE(recordStream(guest("stream.mini"), A));
  ASSERT_TRUE(recordStream(guest("quickstart.mini"), B));

  CommandResult R = runDriver("collect " + A + " " + B);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("[collector: 2 stream(s) ingested, 0 failed"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("fleet rollup:"), std::string::npos);
  EXPECT_NE(R.Output.find("consumeStream"), std::string::npos);
  EXPECT_NE(R.Output.find("mergeSort"), std::string::npos);

  // --curve drills into one routine's rms profile.
  CommandResult Curve =
      runDriver("collect " + A + " " + B + " --curve=consumeStream");
  EXPECT_EQ(Curve.ExitCode, 0) << Curve.Output;
  EXPECT_NE(Curve.Output.find("curve for 'consumeStream'"),
            std::string::npos)
      << Curve.Output;

  std::remove(A.c_str());
  std::remove(B.c_str());
}

TEST(Driver, CollectGrowthSourceAddsStaticColumn) {
  // --growth-source compiles the named guest, estimates each routine's
  // static growth class, and folds a static/agree column pair into the
  // rollup — the fleet-level side of the cross-check.
  std::string A = ::testing::TempDir() + "isprof_collect_growth.strm";
  ASSERT_TRUE(recordStream(guest("stream.mini"), A));
  CommandResult R = runDriver("collect " + A + " --growth-source=" +
                              guest("stream.mini"));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("static  agree"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("O(n)"), std::string::npos) << R.Output;
  // A source that fails to compile is a runtime error, not a crash.
  EXPECT_EQ(runDriver("collect " + A + " --growth-source=/nonexistent.mini")
                .ExitCode,
            1);
  std::remove(A.c_str());
}

TEST(Driver, CollectSpoolDirectoryScan) {
  std::string Spool = ::testing::TempDir() + "isprof_collect_spool";
  std::filesystem::create_directories(Spool);
  ASSERT_TRUE(recordStream(guest("stream.mini"), Spool + "/one.strm"));
  ASSERT_TRUE(recordStream(guest("stream.mini"), Spool + "/two.strm"));
  // Non-stream files in the spool are ignored, not errors.
  { std::ofstream Note(Spool + "/notes.txt"); Note << "not a stream"; }

  CommandResult R = runDriver("collect --spool=" + Spool);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("[collector: 2 stream(s) ingested, 0 failed"),
            std::string::npos)
      << R.Output;
  std::filesystem::remove_all(Spool);
}

TEST(Driver, CollectDiffOfSelfIsEmpty) {
  std::string A = ::testing::TempDir() + "isprof_collect_self.strm";
  ASSERT_TRUE(recordStream(guest("stream.mini"), A));
  CommandResult R = runDriver("collect --diff " + A + " " + A);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("fleet diff: 0 routine(s) differ"),
            std::string::npos)
      << R.Output;
  std::remove(A.c_str());
}

TEST(Driver, CollectCorruptStreamIsNamedAndIsolated) {
  std::string Good = ::testing::TempDir() + "isprof_collect_good.strm";
  std::string Bad = ::testing::TempDir() + "isprof_collect_bad.strm";
  ASSERT_TRUE(recordStream(guest("stream.mini"), Good));
  ASSERT_TRUE(recordStream(guest("stream.mini"), Bad,
                           " --stream-chunk-bytes=1024"));
  // Truncate the bad copy mid-chunk; the collector must name the file
  // and the chunk, fail that stream, and still roll up the good one.
  std::error_code Ec;
  uint64_t Size = std::filesystem::file_size(Bad, Ec);
  ASSERT_FALSE(Ec);
  std::filesystem::resize_file(Bad, Size / 2, Ec);
  ASSERT_FALSE(Ec);

  CommandResult R = runDriver("collect " + Good + " " + Bad);
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("isprof: stream " + Bad + ": chunk "),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("1 stream(s) ingested, 1 failed"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("consumeStream"), std::string::npos);
  std::remove(Good.c_str());
  std::remove(Bad.c_str());
}

TEST(Driver, CollectRoutineFilterSkipsChunks) {
  // phased.mini: setup touches the table once, then work dominates the
  // stream. Small chunks + a setup-only filter make most chunks
  // provably irrelevant via the v2 activity bitmap.
  std::string Path = ::testing::TempDir() + "isprof_collect_phased.strm";
  ASSERT_TRUE(recordStream(guest("phased.mini"), Path,
                           " --stream-chunk-bytes=1024"));
  CommandResult R = runDriver("collect " + Path + " --routine=setup");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("fleet rollup: 1 routine(s)"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("setup"), std::string::npos);
  // The banner must show a nonzero skip count.
  size_t At = R.Output.find(" skipped");
  ASSERT_NE(At, std::string::npos) << R.Output;
  EXPECT_EQ(R.Output.find(", 0 skipped"), std::string::npos) << R.Output;
  std::remove(Path.c_str());
}

TEST(Driver, CollectRejectsBadInvocations) {
  EXPECT_EQ(runDriver("collect").ExitCode, 2);
  EXPECT_EQ(runDriver("collect --top=0 x.strm").ExitCode, 2);
  EXPECT_EQ(runDriver("collect --ingest-workers=999 x.strm").ExitCode, 2);
  EXPECT_EQ(runDriver("collect --diff onlyone.strm").ExitCode, 2);
  // A missing spool directory is a runtime error, not a crash.
  EXPECT_EQ(runDriver("collect --spool=/nonexistent_spool_dir").ExitCode, 1);
}

TEST(Driver, StatsIntervalWritesHeartbeatSnapshots) {
  std::string StatsPath = ::testing::TempDir() + "isprof_hb_stats.json";
  std::string LivePath = StatsPath + ".live";
  std::remove(LivePath.c_str());
  CommandResult R = runDriver("run " + guest("quickstart.mini") +
                              " --stats=json --stats-out=" + StatsPath +
                              " --stats-interval=10");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::ifstream Live(LivePath);
  ASSERT_TRUE(Live.good());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(Live, Line)) {
    EXPECT_EQ(Line.front(), '{') << Line;
    EXPECT_EQ(Line.back(), '}') << Line;
    EXPECT_NE(Line.find("\"schema_version\": 1"), std::string::npos) << Line;
    EXPECT_NE(Line.find("\"ts_ns\": "), std::string::npos) << Line;
    ++Lines;
  }
  EXPECT_GE(Lines, 2u);
  // The final stats file carries the schema version too.
  std::ifstream Stats(StatsPath);
  std::ostringstream Buffer;
  Buffer << Stats.rdbuf();
  EXPECT_NE(Buffer.str().find("\"schema_version\": 1"), std::string::npos);
  // --stats-interval without a JSON stats sink is a usage error.
  EXPECT_EQ(runDriver("run " + guest("quickstart.mini") +
                      " --stats-interval=10")
                .ExitCode,
            2);
  std::remove(StatsPath.c_str());
  std::remove(LivePath.c_str());
}

TEST(Driver, LintUnderstandsJoinHappensBefore) {
  // joined.mini writes its global from both the worker and, post-join,
  // from main — with no lock. The join edge makes it race-free.
  CommandResult R = runDriver("check " + guest("joined.mini") + " --lint");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("lint: 0 location(s) with empty candidate "
                          "lockset"),
            std::string::npos)
      << R.Output;
}

} // namespace
