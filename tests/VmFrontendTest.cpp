//===- tests/VmFrontendTest.cpp - Lexer/parser/compiler tests ------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"
#include "vm/Lexer.h"
#include "vm/Parser.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  return Lex.lexAll();
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  DiagnosticEngine Diags;
  auto Tokens = lex("fn var if else while for return spawn "
                    "== != <= >= && || ! = < > + - * / % ( ) { } [ ] , ;",
                    Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_GE(Tokens.size(), 31u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwFn);
  EXPECT_EQ(Tokens[7].Kind, TokenKind::KwSpawn);
  EXPECT_EQ(Tokens[8].Kind, TokenKind::EqualEqual);
  EXPECT_EQ(Tokens[13].Kind, TokenKind::PipePipe);
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
}

TEST(Lexer, NumbersIdentifiersAndComments) {
  DiagnosticEngine Diags;
  auto Tokens = lex("abc_1 42 // a comment\n7", Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "abc_1");
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 7);
  EXPECT_EQ(Tokens[2].Line, 2u);
}

TEST(Lexer, ReportsBadCharactersAndOverflow) {
  DiagnosticEngine Diags;
  lex("@", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  DiagnosticEngine Diags2;
  lex("999999999999999999999999999", Diags2);
  EXPECT_TRUE(Diags2.hasErrors());
}

TEST(Lexer, TracksColumns) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a bb", Diags);
  EXPECT_EQ(Tokens[0].Column, 1u);
  EXPECT_EQ(Tokens[1].Column, 3u);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

Module parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  Module M = parseSource(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render();
  return M;
}

void expectParseError(const std::string &Source) {
  DiagnosticEngine Diags;
  parseSource(Source, Diags);
  EXPECT_TRUE(Diags.hasErrors()) << "expected a parse error for: " << Source;
}

TEST(Parser, FunctionsAndGlobals) {
  Module M = parseOk("var g = 5; var arr[10]; fn main() { return g; }");
  ASSERT_EQ(M.Globals.size(), 2u);
  EXPECT_EQ(M.Globals[0].Name, "g");
  EXPECT_EQ(M.Globals[0].InitValue, 5);
  EXPECT_TRUE(M.Globals[1].IsArray);
  EXPECT_EQ(M.Globals[1].ArraySize, 10u);
  ASSERT_EQ(M.Functions.size(), 1u);
  EXPECT_EQ(M.Functions[0]->Name, "main");
}

TEST(Parser, PrecedenceShape) {
  Module M = parseOk("fn main() { return 1 + 2 * 3 < 4 && 5 == 6; }");
  const auto &Body = M.Functions[0]->Body->Body;
  ASSERT_EQ(Body.size(), 1u);
  const auto *Ret = static_cast<const ReturnStmt *>(Body[0].get());
  // Top level must be &&.
  ASSERT_EQ(Ret->Value->Kind, ExprKind::Binary);
  const auto *Top = static_cast<const BinaryExpr *>(Ret->Value.get());
  EXPECT_EQ(Top->Op, BinaryOp::LogicalAnd);
  // Left operand of && is the comparison.
  ASSERT_EQ(Top->Lhs->Kind, ExprKind::Binary);
  EXPECT_EQ(static_cast<const BinaryExpr *>(Top->Lhs.get())->Op,
            BinaryOp::Lt);
}

TEST(Parser, IndexedAssignmentVsExpression) {
  Module M = parseOk("var a[4]; fn main() { a[1 + 2] = 7; a[0]; return 0; }");
  const auto &Body = M.Functions[0]->Body->Body;
  ASSERT_EQ(Body.size(), 3u);
  EXPECT_EQ(Body[0]->Kind, StmtKind::IndexAssign);
  EXPECT_EQ(Body[1]->Kind, StmtKind::ExprStmt);
}

TEST(Parser, ControlFlowForms) {
  Module M = parseOk(R"(
    fn main() {
      var i = 0;
      while (i < 10) { i = i + 1; }
      for (var j = 0; j < 5; j = j + 1) { i = i + j; }
      for (;;) { return i; }
      if (i > 3) { i = 0; } else { i = 1; }
      return i;
    })");
  EXPECT_EQ(M.Functions[0]->Body->Body.size(), 6u);
}

TEST(Parser, SpawnAndCalls) {
  Module M = parseOk("fn w(x) { return x; } "
                     "fn main() { var t = spawn w(3); return join(t); }");
  ASSERT_EQ(M.Functions.size(), 2u);
}

TEST(Parser, ErrorRecoveryReportsMultiple) {
  DiagnosticEngine Diags;
  parseSource("fn main() { var = 3; var ok = 4; retrn 5; }", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_GE(Diags.diagnostics().size(), 1u);
}

TEST(Parser, RejectsMalformedConstructs) {
  expectParseError("fn main( { return 0; }");
  expectParseError("fn main() { if i > 3 { } return 0; }");
  expectParseError("var x[]; fn main() { return 0; }");
  expectParseError("fn main() { return 0 }");
  expectParseError("xyz;");
}

//===----------------------------------------------------------------------===//
// Compiler (semantic analysis)
//===----------------------------------------------------------------------===//

void expectCompileError(const std::string &Source,
                        const std::string &Fragment) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(Source, Diags);
  EXPECT_FALSE(Prog.has_value());
  EXPECT_NE(Diags.render().find(Fragment), std::string::npos)
      << "diagnostics were:\n"
      << Diags.render();
}

TEST(Compiler, RequiresMain) {
  expectCompileError("fn f() { return 0; }", "no 'main'");
  expectCompileError("fn main(x) { return x; }", "no parameters");
}

TEST(Compiler, RejectsUndeclaredNames) {
  expectCompileError("fn main() { return nope; }", "undeclared variable");
  expectCompileError("fn main() { nope = 3; return 0; }",
                     "undeclared variable");
  expectCompileError("fn main() { return nope(); }", "undeclared function");
  expectCompileError("fn main() { var t = spawn nope(); return 0; }",
                     "undeclared function");
}

TEST(Compiler, ChecksArity) {
  expectCompileError("fn f(a, b) { return a + b; } fn main() { return f(1); }",
                     "expects 2 argument(s)");
  expectCompileError("fn main() { return rand(1, 2); }",
                     "expects 1 argument(s)");
}

TEST(Compiler, RejectsRedeclarations) {
  expectCompileError("fn main() { var x = 1; var x = 2; return x; }",
                     "redeclaration");
  expectCompileError("var g; var g; fn main() { return 0; }",
                     "redeclaration");
  expectCompileError("fn f() { return 0; } fn f() { return 1; } "
                     "fn main() { return 0; }",
                     "redefinition");
  expectCompileError("fn print(x) { return x; } fn main() { return 0; }",
                     "builtin");
}

TEST(Compiler, AllowsShadowingInInnerScopes) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(
      "fn main() { var x = 1; { var x = 2; } return x; }", Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render();
}

TEST(Compiler, LaysOutGlobals) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(
      "var a = 3; var b[8]; var c; fn main() { return a; }", Diags);
  ASSERT_TRUE(Prog.has_value());
  // 3 variable cells + 8 array cells.
  EXPECT_EQ(Prog->GlobalCells, 11u);
  // Initializers: a's value and b's base address.
  EXPECT_EQ(Prog->GlobalInits.size(), 2u);
}

TEST(Compiler, EmitsBasicBlockMarkers) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(
      "fn main() { var i = 0; while (i < 3) { i = i + 1; } return i; }",
      Diags);
  ASSERT_TRUE(Prog.has_value());
  unsigned Markers = 0;
  for (const Instr &I : Prog->Functions[0].Code)
    if (I.Opcode == Op::BasicBlock)
      ++Markers;
  // Entry, loop header, loop exit.
  EXPECT_EQ(Markers, 3u);
}

TEST(Compiler, ForwardReferencesResolve) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(
      "fn main() { return later(2); } fn later(x) { return x * 2; }", Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render();
}

} // namespace

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

#include "vm/Disasm.h"

namespace {

TEST(Disasm, RendersOpcodesAndCallees) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(R"(
    fn helper(x) { return x * 2; }
    fn main() {
      var a[4];
      a[0] = helper(21);
      var t = spawn helper(1);
      join(t);
      print(a[0]);
      return 0;
    })",
                             Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  std::string Text = disassembleProgram(*Prog);
  EXPECT_NE(Text.find("fn helper (1 params"), std::string::npos);
  EXPECT_NE(Text.find("call           helper, 1 args"), std::string::npos);
  EXPECT_NE(Text.find("spawn          helper, 1 args"), std::string::npos);
  EXPECT_NE(Text.find("call_builtin   join, 1 args"), std::string::npos);
  EXPECT_NE(Text.find("alloca_array"), std::string::npos);
  EXPECT_NE(Text.find("store_indirect"), std::string::npos);
  EXPECT_NE(Text.find("globals: 0 cell(s)"), std::string::npos);
}

TEST(Disasm, JumpTargetsAreInRange) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(R"(
    fn main() {
      var s = 0;
      for (var i = 0; i < 8; i = i + 1) {
        if (i % 3 == 0) { continue; }
        if (i == 7) { break; }
        s = s + i && s < 100 || i > 2;
      }
      return s;
    })",
                             Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  for (const Function &F : Prog->Functions) {
    for (const Instr &I : F.Code) {
      if (I.Opcode == Op::Jump || I.Opcode == Op::JumpIfFalse ||
          I.Opcode == Op::JumpIfTrue) {
        EXPECT_GE(I.A, 0);
        EXPECT_LT(static_cast<size_t>(I.A), F.Code.size());
      }
    }
  }
}

TEST(Parser, BreakContinueParse) {
  Module M = parseOk(
      "fn main() { while (1) { break; } for (;;) { continue; } return 0; }");
  EXPECT_EQ(M.Functions.size(), 1u);
  expectParseError("fn main() { break }");
}

} // namespace
