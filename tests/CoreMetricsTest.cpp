//===- tests/CoreMetricsTest.cpp - Metrics and report tests --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"

#include "core/Report.h"
#include "instr/SymbolTable.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace isp;

namespace {

ActivationRecord makeRecord(RoutineId Rtn, uint64_t Rms, uint64_t Trms,
                            uint64_t Cost, uint64_t InducedThread = 0,
                            uint64_t InducedExternal = 0, ThreadId Tid = 0) {
  ActivationRecord R;
  R.Tid = Tid;
  R.Rtn = Rtn;
  R.Rms = Rms;
  R.Trms = Trms;
  R.Cost = Cost;
  R.InducedThread = InducedThread;
  R.InducedExternal = InducedExternal;
  return R;
}

TEST(Metrics, ProfileRichness) {
  ProfileDatabase Db;
  // Routine 0: rms collapses to one value, trms spreads over four.
  for (uint64_t I = 1; I <= 4; ++I)
    Db.recordActivation(makeRecord(0, 5, 5 * I, 10 * I, I, 0));
  auto Metrics = computeRoutineMetrics(Db);
  ASSERT_EQ(Metrics.size(), 1u);
  EXPECT_EQ(Metrics[0].DistinctRms, 1u);
  EXPECT_EQ(Metrics[0].DistinctTrms, 4u);
  EXPECT_DOUBLE_EQ(Metrics[0].ProfileRichness, 3.0);
}

TEST(Metrics, RichnessCanBeNegative) {
  ProfileDatabase Db;
  // Two distinct rms values collapse onto one trms value.
  Db.recordActivation(makeRecord(0, 2, 6, 1));
  Db.recordActivation(makeRecord(0, 3, 6, 1));
  auto Metrics = computeRoutineMetrics(Db);
  EXPECT_LT(Metrics[0].ProfileRichness, 0.0);
}

TEST(Metrics, InputVolume) {
  ProfileDatabase Db;
  // sum rms = 10, sum trms = 40: volume = 0.75.
  Db.recordActivation(makeRecord(0, 4, 16, 1));
  Db.recordActivation(makeRecord(0, 6, 24, 1));
  auto Metrics = computeRoutineMetrics(Db);
  EXPECT_DOUBLE_EQ(Metrics[0].InputVolume, 0.75);
}

TEST(Metrics, InducedSplitPercentages) {
  ProfileDatabase Db;
  Db.recordActivation(makeRecord(0, 1, 11, 1, 6, 4));
  auto Metrics = computeRoutineMetrics(Db);
  EXPECT_DOUBLE_EQ(Metrics[0].ThreadInducedPct, 60.0);
  EXPECT_DOUBLE_EQ(Metrics[0].ExternalPct, 40.0);
  EXPECT_NEAR(Metrics[0].InducedShareOfInputPct, 100.0 * 10 / 11, 1e-9);
}

TEST(Metrics, RunMetricsUseGlobalCounters) {
  ProfileDatabase Db;
  Db.recordActivation(makeRecord(0, 2, 8, 1));
  Db.GlobalInducedThread = 30;
  Db.GlobalInducedExternal = 10;
  Db.GlobalPlainFirstAccesses = 60;
  RunMetrics Run = computeRunMetrics(Db);
  EXPECT_DOUBLE_EQ(Run.ThreadInducedPct, 75.0);
  EXPECT_DOUBLE_EQ(Run.ExternalPct, 25.0);
  EXPECT_DOUBLE_EQ(Run.InputVolume, 0.75);
}

TEST(Metrics, TailDistributionShape) {
  auto Points = tailDistribution({5, 1, 3});
  ASSERT_EQ(Points.size(), 3u);
  // Sorted descending; x = percentile rank.
  EXPECT_DOUBLE_EQ(Points[0].second, 5.0);
  EXPECT_DOUBLE_EQ(Points[2].second, 1.0);
  EXPECT_NEAR(Points[0].first, 100.0 / 3, 1e-9);
  EXPECT_DOUBLE_EQ(Points[2].first, 100.0);
}

TEST(Metrics, MergedByRoutineCombinesThreads) {
  ProfileDatabase Db;
  Db.recordActivation(makeRecord(7, 1, 2, 5, 0, 0, /*Tid=*/0));
  Db.recordActivation(makeRecord(7, 1, 3, 9, 0, 0, /*Tid=*/1));
  EXPECT_EQ(Db.threadRoutineProfiles().size(), 2u);
  auto Merged = Db.mergedByRoutine();
  ASSERT_EQ(Merged.size(), 1u);
  EXPECT_EQ(Merged.at(7).activations(), 2u);
  EXPECT_EQ(Merged.at(7).sumTrms(), 5u);
  EXPECT_EQ(Merged.at(7).totalCost(), 14u);
}

//===----------------------------------------------------------------------===//
// Plot extraction and reports
//===----------------------------------------------------------------------===//

RoutineProfile makeGrowingProfile(uint64_t (*CostOf)(uint64_t)) {
  RoutineProfile Profile;
  for (uint64_t N = 4; N <= 256; N *= 2) {
    ActivationRecord R;
    R.Rtn = 0;
    R.Rms = N / 2;
    R.Trms = N;
    R.Cost = CostOf(N);
    Profile.addActivation(R);
    // A second, cheaper activation at the same size: the worst-case plot
    // must keep the max.
    R.Cost = CostOf(N) / 2;
    Profile.addActivation(R);
  }
  return Profile;
}

TEST(Report, WorstCasePlotKeepsMaxima) {
  RoutineProfile Profile =
      makeGrowingProfile([](uint64_t N) { return 3 * N; });
  auto Plot = worstCasePlot(Profile, InputMetric::Trms);
  ASSERT_EQ(Plot.size(), 7u);
  EXPECT_DOUBLE_EQ(Plot[0].N, 4.0);
  EXPECT_DOUBLE_EQ(Plot[0].Cost, 12.0);
  auto Workload = workloadPlot(Profile, InputMetric::Trms);
  EXPECT_DOUBLE_EQ(Workload[0].Cost, 2.0); // two activations per size
}

TEST(Report, FitSeesThroughTheMetricChoice) {
  // Cost is linear in trms but, with rms = trms/2, also linear in rms
  // with twice the slope — the Section 3 "impact of input size
  // estimation" effect in its simplest form.
  RoutineProfile Profile =
      makeGrowingProfile([](uint64_t N) { return 10 * N; });
  FitResult ByTrms = fitWorstCase(Profile, InputMetric::Trms);
  FitResult ByRms = fitWorstCase(Profile, InputMetric::Rms);
  EXPECT_EQ(ByTrms.best().Model, GrowthModel::Linear);
  EXPECT_NEAR(ByTrms.best().Slope, 10.0, 0.5);
  EXPECT_NEAR(ByRms.best().Slope, 20.0, 1.0);
}

TEST(Report, RenderRoutineReportMentionsKeyFacts) {
  RoutineProfile Profile =
      makeGrowingProfile([](uint64_t N) { return N * N; });
  SymbolTable Symbols;
  RoutineId Id = Symbols.intern("quadratic_scan");
  std::string Text = renderRoutineReport(Id, Profile, &Symbols);
  EXPECT_NE(Text.find("quadratic_scan"), std::string::npos);
  EXPECT_NE(Text.find("O(n^2)"), std::string::npos);
  EXPECT_NE(Text.find("activations: 14"), std::string::npos);
}

TEST(Report, RunSummaryRanksByCost) {
  ProfileDatabase Db;
  Db.recordActivation(makeRecord(0, 1, 1, 10));
  Db.recordActivation(makeRecord(1, 1, 1, 99999));
  SymbolTable Symbols;
  Symbols.intern("cheap");
  Symbols.intern("expensive");
  std::string Text = renderRunSummary(Db, &Symbols);
  size_t Expensive = Text.find("expensive");
  size_t Cheap = Text.find("cheap");
  ASSERT_NE(Expensive, std::string::npos);
  ASSERT_NE(Cheap, std::string::npos);
  EXPECT_LT(Expensive, Cheap);
}

TEST(Report, SeriesRendering) {
  std::string Text = renderSeries({{1, 2}, {3, 4.5}}, "n", "cost");
  EXPECT_EQ(Text, "n,cost\n1,2.00\n3,4.50\n");
}

TEST(SymbolTableTest, InternAndLookup) {
  SymbolTable Symbols;
  RoutineId A = Symbols.intern("alpha");
  RoutineId B = Symbols.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(Symbols.intern("alpha"), A);
  EXPECT_EQ(Symbols.routineName(B), "beta");
  EXPECT_EQ(Symbols.lookup("beta"), B);
  EXPECT_EQ(Symbols.lookup("gamma"), ~0u);
  EXPECT_EQ(Symbols.routineName(1234), "routine#1234");
}

} // namespace

//===----------------------------------------------------------------------===//
// HTML reports
//===----------------------------------------------------------------------===//

#include "core/HtmlReport.h"

namespace {

TEST(HtmlReport, ContainsTableAndPlots) {
  ProfileDatabase Db;
  for (uint64_t N = 2; N <= 64; N *= 2) {
    ActivationRecord R;
    R.Rtn = 0;
    R.Rms = N / 2;
    R.Trms = N;
    R.Cost = 3 * N;
    R.InducedThread = N / 4;
    Db.recordActivation(R);
  }
  SymbolTable Symbols;
  Symbols.intern("hot<routine>&co");

  HtmlReportOptions Options;
  Options.Title = "unit test report";
  std::string Html = renderHtmlReport(Db, &Symbols, Options);
  EXPECT_NE(Html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(Html.find("unit test report"), std::string::npos);
  // Routine names are HTML-escaped.
  EXPECT_NE(Html.find("hot&lt;routine&gt;&amp;co"), std::string::npos);
  EXPECT_EQ(Html.find("hot<routine>"), std::string::npos);
  // Two plots (rms + trms) with data points and a fit curve.
  EXPECT_NE(Html.find("<svg"), std::string::npos);
  EXPECT_NE(Html.find("class=\"fit\""), std::string::npos);
  EXPECT_NE(Html.find("class=\"pt\""), std::string::npos);
}

TEST(HtmlReport, WritesFile) {
  ProfileDatabase Db;
  ActivationRecord R;
  R.Rtn = 0;
  R.Rms = 1;
  R.Trms = 1;
  R.Cost = 1;
  Db.recordActivation(R);
  std::string Path = ::testing::TempDir() + "isprof_report_test.html";
  ASSERT_TRUE(writeHtmlReport(Path, Db, nullptr));
  std::remove(Path.c_str());
}

} // namespace

//===----------------------------------------------------------------------===//
// Profile diffing
//===----------------------------------------------------------------------===//

#include "core/ProfileDiff.h"

namespace {

ProfileDatabase makeDbWithCurve(RoutineId Rtn, uint64_t (*CostOf)(uint64_t)) {
  ProfileDatabase Db;
  for (uint64_t N = 4; N <= 128; N *= 2) {
    ActivationRecord R;
    R.Rtn = Rtn;
    R.Rms = N;
    R.Trms = N;
    R.Cost = CostOf(N);
    Db.recordActivation(R);
  }
  return Db;
}

TEST(ProfileDiff, DetectsGrowthRegression) {
  SymbolTable Syms;
  RoutineId Id = Syms.intern("scan");
  ProfileDatabase Base =
      makeDbWithCurve(Id, [](uint64_t N) { return 5 * N; });
  ProfileDatabase Cand =
      makeDbWithCurve(Id, [](uint64_t N) { return N * N; });

  auto Diffs = diffProfiles(Base, Syms, Cand, Syms);
  ASSERT_EQ(Diffs.size(), 1u);
  EXPECT_TRUE(Diffs[0].GrowthRegression);
  EXPECT_EQ(Diffs[0].BaselineModel, GrowthModel::Linear);
  EXPECT_EQ(Diffs[0].CandidateModel, GrowthModel::Quadratic);
  EXPECT_TRUE(hasRegressions(Diffs));
  std::string Text = renderProfileDiff(Diffs);
  EXPECT_NE(Text.find("GROWTH REGRESSION"), std::string::npos);
}

TEST(ProfileDiff, UnchangedProfileIsClean) {
  SymbolTable Syms;
  RoutineId Id = Syms.intern("scan");
  ProfileDatabase Base =
      makeDbWithCurve(Id, [](uint64_t N) { return 5 * N; });
  ProfileDatabase Cand =
      makeDbWithCurve(Id, [](uint64_t N) { return 5 * N; });
  auto Diffs = diffProfiles(Base, Syms, Cand, Syms);
  ASSERT_EQ(Diffs.size(), 1u);
  EXPECT_FALSE(Diffs[0].GrowthRegression);
  EXPECT_FALSE(Diffs[0].CostRegression);
  EXPECT_NEAR(Diffs[0].CostRatioAtCommonSizes, 1.0, 1e-9);
  EXPECT_FALSE(hasRegressions(Diffs));
}

TEST(ProfileDiff, DetectsConstantFactorRegression) {
  SymbolTable Syms;
  RoutineId Id = Syms.intern("scan");
  ProfileDatabase Base =
      makeDbWithCurve(Id, [](uint64_t N) { return 5 * N; });
  ProfileDatabase Cand =
      makeDbWithCurve(Id, [](uint64_t N) { return 10 * N; });
  auto Diffs = diffProfiles(Base, Syms, Cand, Syms);
  ASSERT_EQ(Diffs.size(), 1u);
  EXPECT_FALSE(Diffs[0].GrowthRegression) << "same class, just slower";
  EXPECT_TRUE(Diffs[0].CostRegression);
  EXPECT_NEAR(Diffs[0].CostRatioAtCommonSizes, 2.0, 0.01);
}

TEST(ProfileDiff, MatchesByNameAcrossDifferentIds) {
  SymbolTable BaseSyms, CandSyms;
  CandSyms.intern("unrelated_first"); // shift ids in the candidate
  RoutineId BaseId = BaseSyms.intern("scan");
  RoutineId CandId = CandSyms.intern("scan");
  ASSERT_NE(BaseId, CandId);
  ProfileDatabase Base =
      makeDbWithCurve(BaseId, [](uint64_t N) { return 5 * N; });
  ProfileDatabase Cand =
      makeDbWithCurve(CandId, [](uint64_t N) { return 5 * N; });
  auto Diffs = diffProfiles(Base, BaseSyms, Cand, CandSyms);
  ASSERT_EQ(Diffs.size(), 1u);
  EXPECT_EQ(Diffs[0].Name, "scan");
  EXPECT_FALSE(hasRegressions(Diffs));
}

TEST(ProfileDiff, ReportsAddedAndRemovedRoutines) {
  SymbolTable BaseSyms, CandSyms;
  ProfileDatabase Base = makeDbWithCurve(BaseSyms.intern("old_routine"),
                                         [](uint64_t N) { return N; });
  ProfileDatabase Cand = makeDbWithCurve(CandSyms.intern("new_routine"),
                                         [](uint64_t N) { return N; });
  auto Diffs = diffProfiles(Base, BaseSyms, Cand, CandSyms);
  ASSERT_EQ(Diffs.size(), 2u);
  std::string Text = renderProfileDiff(Diffs);
  EXPECT_NE(Text.find("added"), std::string::npos);
  EXPECT_NE(Text.find("removed"), std::string::npos);
}

} // namespace
