//===- tests/ParallelReplayTest.cpp - Parallel replay engine tests -----------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Byte-identity of shard-partitioned parallel replay against the serial
// streaming path, across shard and worker counts, under intensive
// renumbering, and resuming from a mid-stream seek; plus error
// surfacing and the replay statistics surface.
//
//===----------------------------------------------------------------------===//

#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "replay/ParallelReplay.h"
#include "tools/ToolRegistry.h"
#include "trace/Synthetic.h"
#include "trace/TraceStream.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace isp;

namespace {

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

std::vector<EventRecord> makeTrace(uint64_t Operations, uint64_t Seed,
                             unsigned Threads = 4) {
  SyntheticTraceOptions Gen;
  Gen.NumThreads = Threads;
  Gen.NumOperations = Operations;
  Gen.Seed = Seed;
  return generateSyntheticTrace(Gen);
}

void writeStream(const std::string &Path, const std::vector<EventRecord> &Events,
                 TraceStreamOptions Opts = TraceStreamOptions()) {
  TraceStreamWriter Writer;
  ASSERT_TRUE(Writer.open(Path, {}, Opts)) << Writer.error();
  for (const EventRecord &E : Events)
    Writer.append(E);
  ASSERT_TRUE(Writer.close()) << Writer.error();
}

/// The serial baseline: the production streaming path (dispatcher-fed).
std::string serialReport(const std::string &Path, TrmsProfilerOptions Opts,
                         size_t SeekChunk = 0) {
  TraceStreamReader Reader;
  EXPECT_TRUE(Reader.open(Path)) << Reader.error();
  TrmsProfiler Profiler(Opts);
  if (SeekChunk == 0) {
    EXPECT_TRUE(replayTraceStream(Reader, Profiler)) << Reader.error();
  } else {
    EventDispatcher Dispatcher;
    Dispatcher.addTool(&Profiler);
    Dispatcher.start(nullptr);
    std::vector<EventRecord> Chunk;
    Reader.seek(SeekChunk);
    while (Reader.nextChunk(Chunk))
      for (const EventRecord &E : Chunk)
        Dispatcher.enqueue(E);
    Dispatcher.finish();
    EXPECT_TRUE(Reader.error().empty()) << Reader.error();
  }
  return renderToolReport(Profiler, nullptr);
}

std::string parallelReport(const std::string &Path, TrmsProfilerOptions Opts,
                           unsigned Workers, size_t SeekChunk = 0,
                           ParallelReplayStats *StatsOut = nullptr,
                           uint64_t *EventsOut = nullptr) {
  TraceStreamReader Reader;
  EXPECT_TRUE(Reader.open(Path)) << Reader.error();
  Reader.seek(SeekChunk);
  ParallelReplayProfiler Profiler(Opts);
  ParallelReplayOptions ReplayOpts;
  ReplayOpts.Workers = Workers;
  EXPECT_TRUE(parallelReplayStream(Reader, Profiler, nullptr, ReplayOpts,
                                   StatsOut, EventsOut))
      << Reader.error();
  return renderToolReport(Profiler, nullptr);
}

TEST(ParallelReplay, MatchesSerialAcrossShardsAndWorkers) {
  std::vector<EventRecord> Events = makeTrace(20000, 21);
  std::string Path = tempPath("isprof_preplay_matrix.strm");
  writeStream(Path, Events);

  TrmsProfilerOptions Opts;
  std::string Expected = serialReport(Path, Opts);
  ASSERT_FALSE(Expected.empty());

  for (unsigned Shards : {1u, 4u, 16u}) {
    for (unsigned Workers : {0u, 1u, 2u, 4u}) {
      TrmsProfilerOptions ParOpts;
      ParOpts.ShadowShards = Shards;
      ParallelReplayStats Stats;
      uint64_t Replayed = 0;
      EXPECT_EQ(parallelReport(Path, ParOpts, Workers, 0, &Stats, &Replayed),
                Expected)
          << "shards=" << Shards << " workers=" << Workers;
      EXPECT_EQ(Replayed, Events.size());
      EXPECT_EQ(Stats.Workers, std::min(Workers, Shards));
    }
  }
  std::remove(Path.c_str());
}

TEST(ParallelReplay, RenumberingHeavyStaysIdentical) {
  // A tiny counter limit forces a renumbering every few hundred events,
  // exercising the full-barrier path constantly.
  std::vector<EventRecord> Events = makeTrace(12000, 22);
  std::string Path = tempPath("isprof_preplay_renumber.strm");
  writeStream(Path, Events);

  TrmsProfilerOptions Opts;
  Opts.CounterLimit = 512;
  std::string Expected = serialReport(Path, Opts);

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  TrmsProfilerOptions ParOpts = Opts;
  ParOpts.ShadowShards = 8;
  ParallelReplayProfiler Profiler(ParOpts);
  ParallelReplayOptions ReplayOpts;
  ReplayOpts.Workers = 4;
  ASSERT_TRUE(parallelReplayStream(Reader, Profiler, nullptr, ReplayOpts))
      << Reader.error();
  EXPECT_GT(Profiler.renumberings(), 0u);
  EXPECT_EQ(renderToolReport(Profiler, nullptr), Expected);
  std::remove(Path.c_str());
}

TEST(ParallelReplay, SeekResumeMatchesSerial) {
  TraceStreamOptions StreamOpts;
  StreamOpts.ChunkBytes = 2048; // many chunks, so mid-stream is real
  std::vector<EventRecord> Events = makeTrace(15000, 23);
  std::string Path = tempPath("isprof_preplay_seek.strm");
  writeStream(Path, Events, StreamOpts);

  TraceStreamReader Probe;
  ASSERT_TRUE(Probe.open(Path)) << Probe.error();
  ASSERT_GT(Probe.chunkCount(), 4u);
  size_t Mid = Probe.chunkCount() / 2;

  TrmsProfilerOptions Opts;
  std::string Expected = serialReport(Path, Opts, Mid);
  for (unsigned Workers : {0u, 2u, 4u}) {
    TrmsProfilerOptions ParOpts;
    ParOpts.ShadowShards = 16;
    EXPECT_EQ(parallelReport(Path, ParOpts, Workers, Mid), Expected)
        << "workers=" << Workers;
  }
  std::remove(Path.c_str());
}

TEST(ParallelReplay, MidStreamErrorSurfacesAndStillFinishes) {
  TraceStreamOptions StreamOpts;
  StreamOpts.ChunkBytes = 256; // small chunks, <128 events each
  std::vector<EventRecord> Events = makeTrace(4000, 24);
  std::string Path = tempPath("isprof_preplay_corrupt.strm");
  writeStream(Path, Events, StreamOpts);

  // Clobber the first event's kind byte of chunk 1. Layout: header is
  // magic (8) + empty routine table (1 varint byte); each chunk is a
  // u32 length + a 1-byte event-count varint (< 128 events) + payload.
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Bytes = Buffer.str();
  }
  size_t Header = 8 + 1;
  uint32_t Len0 = 0;
  for (int I = 0; I != 4; ++I)
    Len0 |= static_cast<uint32_t>(
                static_cast<unsigned char>(Bytes[Header + I]))
            << (8 * I);
  size_t Chunk1KindByte = Header + 4 + Len0 + 4 + 1;
  ASSERT_LT(Chunk1KindByte, Bytes.size());
  Bytes[Chunk1KindByte] = static_cast<char>(0xff);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  TraceStreamReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  ParallelReplayProfiler Profiler;
  ParallelReplayOptions ReplayOpts;
  ReplayOpts.Workers = 2;
  uint64_t Replayed = 0;
  EXPECT_FALSE(parallelReplayStream(Reader, Profiler, nullptr, ReplayOpts,
                                    nullptr, &Replayed));
  EXPECT_NE(Reader.error().find("invalid event kind"), std::string::npos)
      << Reader.error();
  // Chunk 0 replayed before the failure, and onFinish ran: the partial
  // report renders.
  EXPECT_GT(Replayed, 0u);
  EXPECT_FALSE(renderToolReport(Profiler, nullptr).empty());
  std::remove(Path.c_str());
}

TEST(ParallelReplay, StatsReflectTheRun) {
  std::vector<EventRecord> Events = makeTrace(10000, 25);
  std::string Path = tempPath("isprof_preplay_stats.strm");
  writeStream(Path, Events);

  TrmsProfilerOptions Opts;
  Opts.ShadowShards = 8;
  ParallelReplayStats Stats;
  parallelReport(Path, Opts, 2, 0, &Stats);
  EXPECT_EQ(Stats.Workers, 2u);
  EXPECT_GT(Stats.Epochs, 0u);     // every call/return seals
  EXPECT_GT(Stats.MemOps, 0u);
  EXPECT_GE(Stats.ShardOps, Stats.MemOps);
  EXPECT_GT(Stats.QueueDepthMax, 0u);

  // A worker request beyond the shard count is capped: extra workers
  // would own no shard.
  TrmsProfilerOptions Small;
  Small.ShadowShards = 4;
  ParallelReplayStats Capped;
  parallelReport(Path, Small, 32, 0, &Capped);
  EXPECT_EQ(Capped.Workers, 4u);
  std::remove(Path.c_str());
}

TEST(ParallelReplay, ActivityMasksSkipUntouchedWorkers) {
  // Every memory access lands in shadow chunk key 0 → shard 0 →
  // worker 0; with the v2 masks, workers 1..3 skip every chunk.
  std::vector<EventRecord> Events;
  uint64_t Time = 1;
  Events.push_back(EventRecord::threadStart(0, Time++, 0));
  Events.push_back(EventRecord::call(0, Time++, 1));
  for (unsigned I = 0; I != 4000; ++I) {
    Events.push_back(EventRecord::write(0, Time++, I % 256, 1));
    Events.push_back(EventRecord::read(0, Time++, I % 256, 1));
  }
  Events.push_back(EventRecord::ret(0, Time++, 1, 0));
  Events.push_back(EventRecord::threadEnd(0, Time++));

  std::string Path = tempPath("isprof_preplay_skip.strm");
  TraceStreamOptions StreamOpts;
  StreamOpts.ChunkBytes = 1024;
  writeStream(Path, Events, StreamOpts);

  TraceStreamReader Probe;
  ASSERT_TRUE(Probe.open(Path)) << Probe.error();
  ASSERT_TRUE(Probe.hasActivityMasks());
  size_t ChunkCount = Probe.chunkCount();
  ASSERT_GT(ChunkCount, 2u);

  TrmsProfilerOptions Opts;
  Opts.ShadowShards = 16;
  ParallelReplayStats Stats;
  std::string Report = parallelReport(Path, Opts, 4, 0, &Stats);
  // Workers 1..3 are provably untouched by every chunk.
  EXPECT_EQ(Stats.ChunksSkipped, 3 * ChunkCount);

  // The identical events in a v1 stream: no masks, nothing skipped,
  // and the report is still identical.
  std::string V1Path = tempPath("isprof_preplay_skip_v1.strm");
  TraceStreamOptions V1Opts = StreamOpts;
  V1Opts.FormatVersion = 1;
  writeStream(V1Path, Events, V1Opts);
  ParallelReplayStats V1Stats;
  EXPECT_EQ(parallelReport(V1Path, Opts, 4, 0, &V1Stats), Report);
  EXPECT_EQ(V1Stats.ChunksSkipped, 0u);
  std::remove(Path.c_str());
  std::remove(V1Path.c_str());
}

} // namespace
