//===- tests/VmMachineTest.cpp - Interpreter and scheduler tests ---------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "instr/Dispatcher.h"
#include "tools/NulTool.h"
#include "vm/Compiler.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

RunResult run(const std::string &Source,
              MachineOptions Opts = MachineOptions()) {
  return compileAndRun(Source, nullptr, Opts);
}

std::string runOutput(const std::string &Source) {
  RunResult R = run(Source);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Output;
}

//===----------------------------------------------------------------------===//
// Sequential semantics
//===----------------------------------------------------------------------===//

TEST(Machine, ArithmeticAndPrecedence) {
  EXPECT_EQ(runOutput("fn main() { print(2 + 3 * 4); return 0; }"), "14\n");
  EXPECT_EQ(runOutput("fn main() { print((2 + 3) * 4); return 0; }"),
            "20\n");
  EXPECT_EQ(runOutput("fn main() { print(7 / 2); print(7 % 2); "
                      "print(-7 / 2); return 0; }"),
            "3\n1\n-3\n");
  EXPECT_EQ(runOutput("fn main() { print(1 < 2); print(2 <= 1); "
                      "print(3 == 3); print(3 != 3); return 0; }"),
            "1\n0\n1\n0\n");
}

TEST(Machine, ShortCircuitEvaluation) {
  // The right operand must not run when the left decides: a division by
  // zero there would kill the program.
  EXPECT_EQ(runOutput("fn main() { print(0 != 0 && 1 / 0 > 0); "
                      "print(1 == 1 || 1 / 0 > 0); return 0; }"),
            "0\n1\n");
  EXPECT_EQ(runOutput("fn main() { print(2 && 3); print(0 || 5); "
                      "print(!0); print(!7); return 0; }"),
            "1\n1\n1\n0\n");
}

TEST(Machine, ControlFlow) {
  EXPECT_EQ(runOutput(R"(
    fn main() {
      var sum = 0;
      for (var i = 1; i <= 10; i = i + 1) { sum = sum + i; }
      var j = 10;
      while (j > 0) { sum = sum + 1; j = j - 1; }
      if (sum == 65) { print(sum); } else { print(0 - sum); }
      return 0;
    })"),
            "65\n");
}

TEST(Machine, FunctionsAndRecursion) {
  EXPECT_EQ(runOutput(R"(
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main() { print(fib(15)); return 0; })"),
            "610\n");
}

TEST(Machine, ArraysLocalAndGlobal) {
  EXPECT_EQ(runOutput(R"(
    var g[4];
    fn main() {
      var a[3];
      a[0] = 5; a[1] = 6; a[2] = a[0] + a[1];
      g[3] = a[2] * 2;
      print(g[3]);
      print(g[0]); // zero-initialized globals
      return 0;
    })"),
            "22\n0\n");
}

TEST(Machine, ArrayArgumentsAreAddresses) {
  EXPECT_EQ(runOutput(R"(
    fn fill(buf, n) {
      var i = 0;
      while (i < n) { buf[i] = i * i; i = i + 1; }
      return 0;
    }
    fn main() {
      var a[5];
      fill(a, 5);
      print(a[4]);
      return 0;
    })"),
            "16\n");
}

TEST(Machine, HeapAllocAndRawAccess) {
  EXPECT_EQ(runOutput(R"(
    fn main() {
      var p = alloc(10);
      store(p + 3, 77);
      print(load(p + 3));
      free(p);
      return 0;
    })"),
            "77\n");
}

TEST(Machine, GlobalInitializers) {
  EXPECT_EQ(runOutput("var a = 7; var b = -3; fn main() { print(a + b); "
                      "return 0; }"),
            "4\n");
}

TEST(Machine, ExitCodeFromMain) {
  RunResult R = run("fn main() { return 42; }");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ExitCode, 42);
}

//===----------------------------------------------------------------------===//
// Runtime errors
//===----------------------------------------------------------------------===//

TEST(Machine, DivisionByZeroFails) {
  RunResult R = run("fn main() { var x = 0; return 1 / x; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(Machine, WildAddressFails) {
  RunResult R = run("fn main() { return load(123456789); }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invalid memory access"), std::string::npos);
}

TEST(Machine, StackOverflowFails) {
  RunResult R = run("fn inf(n) { return inf(n + 1); } "
                    "fn main() { return inf(0); }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("stack overflow"), std::string::npos);
}

TEST(Machine, InstructionBudgetStopsInfiniteLoops) {
  MachineOptions Opts;
  Opts.MaxInstructions = 10000;
  RunResult R = run("fn main() { for (;;) { } return 0; }", Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(Machine, DeadlockIsDetected) {
  RunResult R = run(R"(
    fn main() {
      var s = sem_create(0);
      sem_wait(s);
      return 0;
    })");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("deadlock"), std::string::npos);
}

TEST(Machine, CompileErrorsSurfaceInResult) {
  RunResult R = run("fn main() { return undefined_thing; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("compile error"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Threads and synchronization
//===----------------------------------------------------------------------===//

TEST(Machine, SpawnJoinReturnsValue) {
  EXPECT_EQ(runOutput(R"(
    fn square(x) { return x * x; }
    fn main() {
      var t1 = spawn square(9);
      var t2 = spawn square(10);
      print(join(t1) + join(t2));
      return 0;
    })"),
            "181\n");
}

TEST(Machine, ManyThreadsShareGlobals) {
  EXPECT_EQ(runOutput(R"(
    var counter;
    var lk;
    fn bump(times) {
      var i = 0;
      while (i < times) {
        lock_acquire(lk);
        counter = counter + 1;
        lock_release(lk);
        i = i + 1;
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      counter = 0;
      var tids[8];
      var t = 0;
      while (t < 8) { tids[t] = spawn bump(50); t = t + 1; }
      t = 0;
      while (t < 8) { join(tids[t]); t = t + 1; }
      print(counter);
      return 0;
    })"),
            "400\n");
}

TEST(Machine, SemaphoresEnforceAlternation) {
  // Producer-consumer with capacity 1: the consumer must read every
  // value exactly once, in order.
  EXPECT_EQ(runOutput(R"(
    var x;
    var emptySem;
    var fullSem;
    fn producer(n) {
      var i = 1;
      while (i <= n) {
        sem_wait(emptySem);
        x = i;
        sem_post(fullSem);
        i = i + 1;
      }
      return 0;
    }
    fn consumer(n) {
      var sum = 0;
      var i = 0;
      while (i < n) {
        sem_wait(fullSem);
        sum = sum + x;
        sem_post(emptySem);
        i = i + 1;
      }
      return sum;
    }
    fn main() {
      emptySem = sem_create(1);
      fullSem = sem_create(0);
      var p = spawn producer(20);
      var c = spawn consumer(20);
      join(p);
      print(join(c));
      return 0;
    })"),
            "210\n");
}

TEST(Machine, JoinAfterThreadAlreadyFinished) {
  EXPECT_EQ(runOutput(R"(
    fn quick() { return 5; }
    fn main() {
      var t = spawn quick();
      var i = 0;
      while (i < 1000) { i = i + 1; } // let it finish
      print(join(t));
      return 0;
    })"),
            "5\n");
}

TEST(Machine, SchedulerIsDeterministic) {
  const char *Source = R"(
    var acc;
    var lk;
    fn work(id) {
      var i = 0;
      while (i < 30) {
        lock_acquire(lk);
        acc = acc * 2 + id;
        lock_release(lk);
        i = i + 1;
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      acc = 1;
      var a = spawn work(1);
      var b = spawn work(2);
      join(a); join(b);
      print(acc % 1000000007);
      return 0;
    })";
  std::string First = runOutput(Source);
  std::string Second = runOutput(Source);
  EXPECT_EQ(First, Second);
}

TEST(Machine, SliceLengthChangesInterleavingNotResults) {
  const char *Source = R"(
    var total;
    var lk;
    fn add(n) {
      var i = 0;
      while (i < n) {
        lock_acquire(lk);
        total = total + 1;
        lock_release(lk);
        i = i + 1;
      }
      return 0;
    }
    fn main() {
      lk = lock_create();
      total = 0;
      var a = spawn add(40);
      var b = spawn add(40);
      join(a); join(b);
      print(total);
      return 0;
    })";
  MachineOptions Short;
  Short.SliceLength = 7;
  MachineOptions Long;
  Long.SliceLength = 5000;
  RunResult A = run(Source, Short);
  RunResult B = run(Source, Long);
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(A.Output, "80\n");
  EXPECT_EQ(B.Output, "80\n");
  EXPECT_GT(A.Stats.ThreadSwitches, B.Stats.ThreadSwitches);
}

//===----------------------------------------------------------------------===//
// Devices and system calls
//===----------------------------------------------------------------------===//

TEST(Machine, SysReadDeliversPreloadedData) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(R"(
    var buf[4];
    fn main() {
      sysread(1, buf, 4);
      print(buf[0] + buf[1] + buf[2] + buf[3]);
      return 0;
    })",
                             Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.render();
  Machine M(*Prog, nullptr);
  M.device().preload(1, {10, 20, 30, 40});
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "100\n");
}

TEST(Machine, SysWriteReachesDevice) {
  DiagnosticEngine Diags;
  auto Prog = compileProgram(R"(
    var buf[3];
    fn main() {
      buf[0] = 7; buf[1] = 8; buf[2] = 9;
      syswrite(2, buf, 3);
      return 0;
    })",
                             Diags);
  ASSERT_TRUE(Prog.has_value());
  Machine M(*Prog, nullptr);
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(M.device().valuesWritten(2), 3u);
  ASSERT_EQ(M.device().writtenTail(2).size(), 3u);
  EXPECT_EQ(M.device().writtenTail(2)[0], 7);
  EXPECT_EQ(M.device().writtenTail(2)[2], 9);
}

TEST(Machine, DeviceStreamsAreDeterministic) {
  const char *Source = R"(
    var buf[8];
    fn main() {
      sysread(5, buf, 8);
      var sum = 0;
      var i = 0;
      while (i < 8) { sum = sum + buf[i]; i = i + 1; }
      print(sum);
      return 0;
    })";
  EXPECT_EQ(runOutput(Source), runOutput(Source));
}

//===----------------------------------------------------------------------===//
// Instrumentation contract
//===----------------------------------------------------------------------===//

TEST(Machine, EventStreamIsWellFormed) {
  const char *Source = R"(
    var buf[4];
    fn helper(x) { return x + buf[0]; }
    fn worker(n) {
      var i = 0;
      var acc = 0;
      while (i < n) { acc = helper(acc); i = i + 1; }
      return acc;
    }
    fn main() {
      sysread(1, buf, 4);
      var t = spawn worker(5);
      var r = worker(3);
      syswrite(2, buf, 2);
      return r + join(t);
    })";
  DiagnosticEngine Diags;
  auto Prog = compileProgram(Source, Diags);
  ASSERT_TRUE(Prog.has_value());
  EventDispatcher Dispatcher;
  Dispatcher.enableRecording();
  Machine M(*Prog, &Dispatcher);
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok) << R.Error;

  const std::vector<EventRecord> Events = Dispatcher.decodedRecordedEvents();
  ASSERT_FALSE(Events.empty());
  // Times strictly increase; call/return balance per thread; memory ops
  // happen inside activations (except spawn-argument publication).
  uint64_t LastTime = 0;
  std::map<ThreadId, int> Depth;
  uint64_t Reads = 0, Writes = 0, KernelReads = 0, KernelWrites = 0;
  for (const EventRecord &E : Events) {
    EXPECT_GT(E.Time, LastTime);
    LastTime = E.Time;
    switch (E.Kind) {
    case EventKind::Call:
      ++Depth[E.Tid];
      break;
    case EventKind::Return:
      --Depth[E.Tid];
      EXPECT_GE(Depth[E.Tid], 0);
      break;
    case EventKind::Read:
      // The dispatcher coalesces adjacent accesses to consecutive cells,
      // so one event may carry several cells in Arg1; cell totals must
      // still match the machine's counters exactly.
      Reads += E.Arg1;
      EXPECT_GT(Depth[E.Tid], 0);
      break;
    case EventKind::Write:
      Writes += E.Arg1;
      break;
    case EventKind::KernelRead:
      ++KernelReads;
      break;
    case EventKind::KernelWrite:
      ++KernelWrites;
      break;
    default:
      break;
    }
  }
  for (auto &[Tid, D] : Depth)
    EXPECT_EQ(D, 0);
  EXPECT_GT(Reads, 0u);
  EXPECT_GT(Writes, 0u);
  EXPECT_EQ(KernelReads, 1u);  // one syswrite
  EXPECT_EQ(KernelWrites, 1u); // one sysread
  EXPECT_EQ(Reads, R.Stats.MemReads);
  EXPECT_EQ(Writes, R.Stats.MemWrites);
}

TEST(Machine, NativeRunMatchesInstrumentedRun) {
  const char *Source = R"(
    fn main() {
      var acc = 0;
      for (var i = 0; i < 200; i = i + 1) { acc = acc + i * i; }
      print(acc);
      return 0;
    })";
  RunResult Native = compileAndRun(Source, nullptr);
  NulTool Nul;
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Nul);
  RunResult Instrumented = compileAndRun(Source, &Dispatcher);
  ASSERT_TRUE(Native.Ok && Instrumented.Ok);
  EXPECT_EQ(Native.Output, Instrumented.Output);
  EXPECT_EQ(Native.Stats.Instructions, Instrumented.Stats.Instructions);
  EXPECT_EQ(Native.Stats.BasicBlocks, Instrumented.Stats.BasicBlocks);
  EXPECT_GT(Nul.eventsSeen(), 0u);
}

} // namespace

//===----------------------------------------------------------------------===//
// break / continue
//===----------------------------------------------------------------------===//

namespace {

TEST(Machine, BreakLeavesInnermostLoop) {
  EXPECT_EQ(runOutput(R"(
    fn main() {
      var found = -1;
      for (var i = 0; i < 10; i = i + 1) {
        var j = 0;
        while (j < 10) {
          if (i * 10 + j == 37) {
            found = i * 100 + j;
            break;
          }
          j = j + 1;
        }
        if (found >= 0) { break; }
      }
      print(found);
      return 0;
    })"),
            "307\n");
}

TEST(Machine, ContinueSkipsRestOfBody) {
  // Sum of odd numbers below 10 via continue in a while loop.
  EXPECT_EQ(runOutput(R"(
    fn main() {
      var sum = 0;
      var i = 0;
      while (i < 10) {
        i = i + 1;
        if (i % 2 == 0) { continue; }
        sum = sum + i;
      }
      print(sum);
      return 0;
    })"),
            "25\n");
}

TEST(Machine, ContinueInForRunsStepClause) {
  // If continue skipped the step clause this would loop forever (and be
  // stopped by the instruction budget); getting 5 proves it ran.
  EXPECT_EQ(runOutput(R"(
    fn main() {
      var count = 0;
      for (var i = 0; i < 10; i = i + 1) {
        if (i % 2 == 1) { continue; }
        count = count + 1;
      }
      print(count);
      return 0;
    })"),
            "5\n");
}

TEST(Machine, BreakOutsideLoopIsCompileError) {
  RunResult R = run("fn main() { break; return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("outside of a loop"), std::string::npos);
  RunResult R2 = run("fn main() { continue; return 0; }");
  EXPECT_FALSE(R2.Ok);
  EXPECT_NE(R2.Error.find("outside of a loop"), std::string::npos);
}

TEST(Machine, BreakForInfiniteLoop) {
  EXPECT_EQ(runOutput(R"(
    fn main() {
      var n = 0;
      for (;;) {
        n = n + 1;
        if (n == 42) { break; }
      }
      print(n);
      return 0;
    })"),
            "42\n");
}

} // namespace

//===----------------------------------------------------------------------===//
// Edge cases
//===----------------------------------------------------------------------===//

namespace {

TEST(MachineEdge, SelfJoinDeadlocks) {
  RunResult R = run("fn main() { return join(thread_id()); }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("deadlock"), std::string::npos);
}

TEST(MachineEdge, JoinInvalidThreadFails) {
  RunResult R = run("fn main() { return join(99); }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invalid thread"), std::string::npos);
}

TEST(MachineEdge, SemaphoreInvalidIdFails) {
  RunResult R = run("fn main() { sem_wait(42); return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invalid semaphore"), std::string::npos);
}

TEST(MachineEdge, ZeroSizedAllocIsHarmless) {
  EXPECT_EQ(runOutput(R"(
    fn main() {
      var p = alloc(0);
      var q = alloc(4);
      store(q, 9);
      print(load(q));
      free(p);
      free(q);
      return 0;
    })"),
            "9\n");
}

TEST(MachineEdge, CrossThreadStackSharingWorks) {
  // A thread passes the address of its own local array to a worker,
  // which fills it — pointers into stacks are first-class.
  EXPECT_EQ(runOutput(R"(
    fn fill(buf, n, v) {
      for (var i = 0; i < n; i = i + 1) { buf[i] = v + i; }
      return 0;
    }
    fn main() {
      var mine[6];
      var t = spawn fill(mine, 6, 100);
      join(t);
      print(mine[0] + mine[5]);
      return 0;
    })"),
            "205\n");
}

TEST(MachineEdge, SpawnStormCompletes) {
  MachineOptions Opts;
  Opts.MaxInstructions = 1u << 24;
  RunResult R = run(R"(
    fn tiny(x) { return x + 1; }
    fn main() {
      var total = 0;
      for (var round = 0; round < 60; round = round + 1) {
        var a = spawn tiny(round);
        var b = spawn tiny(round * 2);
        total = total + join(a) + join(b);
      }
      print(total);
      return 0;
    })",
                    Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.ThreadsSpawned, 121u); // main + 120 workers
}

TEST(MachineEdge, ThreadIdBuiltin) {
  EXPECT_EQ(runOutput(R"(
    fn who() { return thread_id(); }
    fn main() {
      var t = spawn who();
      print(thread_id());
      print(join(t));
      return 0;
    })"),
            "0\n1\n");
}

TEST(MachineEdge, NegativeArraySizeFails) {
  RunResult R = run("fn main() { var n = 0 - 4; var a[n]; return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("negative local array size"), std::string::npos);
}

TEST(MachineEdge, ModuloOfNegativeOperands) {
  // C-style truncation semantics, pinned.
  EXPECT_EQ(runOutput("fn main() { print(-7 % 3); print(7 % -3); "
                      "return 0; }"),
            "-1\n1\n");
}

} // namespace
