//===- tests/CoreTrmsTest.cpp - trms algorithm unit tests ----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Exact-value tests of the read/write timestamping profiler on
// hand-built traces, including every worked example of the paper's
// Section 2 (Figures 1a, 1b, 2, 3 / Examples 1-4), the external-input
// semantics of Figure 12, and the counter renumbering of Figure 13.
//
//===----------------------------------------------------------------------===//

#include "core/TrmsProfiler.h"

#include "core/RmsProfiler.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace isp;

namespace {

constexpr RoutineId F = 0, G = 1, H = 2, Consumer = 3, Producer = 4,
                    ExternalRead = 5;
constexpr Addr X = 100;

ProfileDatabase runTrms(const TraceBuilder &Trace,
                        TrmsProfilerOptions Options = TrmsProfilerOptions()) {
  return profileTrace<TrmsProfiler>(Trace.events(), Options);
}

// Figure 1a / Example 1: f in T1 reads x twice; g in T2 overwrites x in
// between. rms_f = 1 but trms_f = 2 (second read is induced).
TEST(TrmsExamples, Figure1a) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F).read(1, X);
  Trace.start(2).call(2, G).write(2, X).ret(2, G).end(2);
  Trace.read(1, X).ret(1, F).end(1);

  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *Rec = findActivation(Db, F);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Rms, 1u);
  EXPECT_EQ(Rec->Trms, 2u);
  EXPECT_EQ(Rec->InducedThread, 1u);
  EXPECT_EQ(Rec->InducedExternal, 0u);
}

// Figure 1b / Example 2: f reads x, T2 writes x, f's subroutine h reads
// x (induced), then f reads x again (not induced: h already consumed the
// foreign value on f's behalf). rms_f = rms_h = 1; trms_h = 1;
// trms_f = 2.
TEST(TrmsExamples, Figure1b) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F).read(1, X);
  Trace.start(2).call(2, G).write(2, X).ret(2, G).end(2);
  Trace.call(1, H).read(1, X).ret(1, H);
  Trace.read(1, X).ret(1, F).end(1);

  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *RecH = findActivation(Db, H);
  ASSERT_NE(RecH, nullptr);
  EXPECT_EQ(RecH->Rms, 1u);
  EXPECT_EQ(RecH->Trms, 1u);
  EXPECT_EQ(RecH->InducedThread, 1u);

  const ActivationRecord *RecF = findActivation(Db, F);
  ASSERT_NE(RecF, nullptr);
  EXPECT_EQ(RecF->Rms, 1u);
  EXPECT_EQ(RecF->Trms, 2u);
  EXPECT_EQ(RecF->InducedThread, 1u);
}

// Figure 2 / Example 3: strict producer-consumer alternation on one
// cell. After n produced values, rms_consumer = 1 and trms_consumer = n.
TEST(TrmsExamples, Figure2ProducerConsumer) {
  constexpr unsigned N = 25;
  TraceBuilder Trace;
  Trace.start(1).start(2);
  Trace.call(2, Consumer);
  for (unsigned I = 0; I != N; ++I) {
    Trace.call(1, Producer).write(1, X).ret(1, Producer);
    Trace.read(2, X);
  }
  Trace.ret(2, Consumer).end(2).end(1);

  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *Rec = findActivation(Db, Consumer);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Rms, 1u);
  EXPECT_EQ(Rec->Trms, N);
  // Every read, including the first, follows a producer write: all N are
  // induced first-accesses (Example 3: "all read operations on x are
  // induced first-accesses").
  EXPECT_EQ(Rec->InducedThread, N);
}

// Figure 3 / Example 4: each iteration the kernel deposits 2 cells but
// the routine reads only one: after n iterations rms = 1, trms = n, and
// all induced accesses are external.
TEST(TrmsExamples, Figure3BufferedRead) {
  constexpr unsigned N = 18;
  constexpr Addr B0 = 200, B1 = 201;
  TraceBuilder Trace;
  Trace.start(1).call(1, ExternalRead);
  for (unsigned I = 0; I != N; ++I) {
    Trace.kernelWrite(1, B0).kernelWrite(1, B1);
    Trace.read(1, B0);
  }
  Trace.ret(1, ExternalRead).end(1);

  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *Rec = findActivation(Db, ExternalRead);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Rms, 1u);
  EXPECT_EQ(Rec->Trms, N);
  EXPECT_EQ(Rec->InducedExternal, N);
  EXPECT_EQ(Rec->InducedThread, 0u);
}

// Figure 12's kernelRead: sending a buffer to a device counts the
// buffer cells as reads by the thread (input of the sending routine).
TEST(TrmsExamples, KernelReadCountsAsInput) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F);
  Trace.call(1, G);
  for (Addr A = 300; A != 308; ++A)
    Trace.write(1, A);
  Trace.ret(1, G);
  Trace.kernelRead(1, 300, 8); // syswrite of the buffer G produced
  Trace.ret(1, F).end(1);

  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *RecF = findActivation(Db, F);
  ASSERT_NE(RecF, nullptr);
  // The cells were written inside F's subtree (by G), so they are not
  // first accesses for F...
  EXPECT_EQ(RecF->Rms, 0u);
  EXPECT_EQ(RecF->Trms, 0u);

  // ...but a sender that did not produce the data itself reads it as
  // fresh input.
  TraceBuilder Trace2;
  Trace2.start(1).call(1, G);
  for (Addr A = 300; A != 308; ++A)
    Trace2.write(1, A);
  Trace2.ret(1, G).end(1);
  Trace2.start(2).call(2, F).kernelRead(2, 300, 8).ret(2, F).end(2);
  ProfileDatabase Db2 = runTrms(Trace2);
  const ActivationRecord *Sender = findActivation(Db2, F);
  ASSERT_NE(Sender, nullptr);
  EXPECT_EQ(Sender->Trms, 8u);
  EXPECT_EQ(Sender->InducedThread, 8u);
}

// A kernel buffer fill alone contributes nothing until the thread
// actually reads the filled cells (Figure 12's rationale).
TEST(TrmsExamples, KernelWriteAloneIsNotInput) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F).kernelWrite(1, 400, 16).ret(1, F).end(1);
  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *Rec = findActivation(Db, F);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Trms, 0u);
  EXPECT_EQ(Rec->Rms, 0u);
}

// Re-reading a kernel-filled cell counts once, not per read.
TEST(TrmsExamples, KernelFilledCellCountsOnce) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F).kernelWrite(1, X);
  Trace.read(1, X).read(1, X).read(1, X);
  Trace.ret(1, F).end(1);
  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *Rec = findActivation(Db, F);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Trms, 1u);
  EXPECT_EQ(Rec->InducedExternal, 1u);
}

// A thread's own write shields it from the induced classification: x
// last written by the reader itself is not new input.
TEST(TrmsSemantics, OwnWriteIsNotInduced) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F).write(1, X).read(1, X).ret(1, F).end(1);
  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *Rec = findActivation(Db, F);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Trms, 0u);
  EXPECT_EQ(Rec->Rms, 0u);
}

// Sibling activations: the second sibling re-reading a location the
// first one read still counts it (the parent does not double-count).
TEST(TrmsSemantics, SiblingTransfersUnit) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F);
  Trace.call(1, G).read(1, X).ret(1, G);
  Trace.call(1, H).read(1, X).ret(1, H);
  Trace.ret(1, F).end(1);

  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *RecG = findActivation(Db, G);
  const ActivationRecord *RecH = findActivation(Db, H);
  const ActivationRecord *RecF = findActivation(Db, F);
  ASSERT_NE(RecG, nullptr);
  ASSERT_NE(RecH, nullptr);
  ASSERT_NE(RecF, nullptr);
  EXPECT_EQ(RecG->Rms, 1u);
  EXPECT_EQ(RecH->Rms, 1u);
  // F's subtree first-accessed x once: both siblings saw it as input,
  // but F itself gets exactly one unit.
  EXPECT_EQ(RecF->Rms, 1u);
  EXPECT_EQ(RecF->Trms, 1u);
}

// Inequality 1 (trms >= rms) and Invariant 2 are enforced by asserts in
// the profiler; here we check the aggregate stays consistent on a
// deeper nest with cross-thread traffic.
TEST(TrmsSemantics, DeepNestAggregates) {
  TraceBuilder Trace;
  Trace.start(1).start(2);
  Trace.call(1, F).call(1, G).call(1, H);
  Trace.read(1, X).write(2, X).read(1, X);
  Trace.ret(1, H);
  Trace.write(2, X);
  Trace.read(1, X);
  Trace.ret(1, G).ret(1, F).end(1).end(2);

  ProfileDatabase Db = runTrms(Trace);
  const ActivationRecord *RecH = findActivation(Db, H);
  ASSERT_NE(RecH, nullptr);
  EXPECT_EQ(RecH->Rms, 1u);
  EXPECT_EQ(RecH->Trms, 2u);
  const ActivationRecord *RecG = findActivation(Db, G);
  ASSERT_NE(RecG, nullptr);
  // G: H's unit plus its own induced re-read after the second foreign
  // write.
  EXPECT_EQ(RecG->Rms, 1u);
  EXPECT_EQ(RecG->Trms, 3u);
  const ActivationRecord *RecF = findActivation(Db, F);
  ASSERT_NE(RecF, nullptr);
  EXPECT_EQ(RecF->Trms, 3u);
}

// Cost accounting: basic blocks between call and return, inclusive of
// descendants.
TEST(TrmsSemantics, InclusiveBasicBlockCost) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F).bb(1).bb(1);
  Trace.call(1, G).bb(1, 5).ret(1, G);
  Trace.bb(1).ret(1, F).end(1);
  ProfileDatabase Db = runTrms(Trace);
  EXPECT_EQ(findActivation(Db, G)->Cost, 5u);
  EXPECT_EQ(findActivation(Db, F)->Cost, 8u);
}

// Thread-sensitive profiles: the same routine in two threads yields two
// separate profiles that merge on demand.
TEST(TrmsSemantics, ThreadSensitiveProfiles) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F).read(1, 500).ret(1, F).end(1);
  Trace.start(2).call(2, F).read(2, 600).read(2, 601).ret(2, F).end(2);
  ProfileDatabase Db = runTrms(Trace);
  EXPECT_EQ(Db.threadRoutineProfiles().size(), 2u);
  auto Merged = Db.mergedByRoutine();
  ASSERT_EQ(Merged.size(), 1u);
  EXPECT_EQ(Merged.at(F).activations(), 2u);
  EXPECT_EQ(Merged.at(F).distinctTrmsValues(), 2u); // sizes 1 and 2
}

// Pending activations at the end of the trace are unwound and recorded.
TEST(TrmsSemantics, UnterminatedActivationsAreRecorded) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F).read(1, X).call(1, G).read(1, 700);
  ProfileDatabase Db = runTrms(Trace);
  EXPECT_EQ(Db.totalActivations(), 2u);
  EXPECT_EQ(findActivation(Db, F)->Trms, 2u);
}

// The standalone rms profiler computes exactly the rms the trms
// profiler reports in its combined pass.
TEST(TrmsSemantics, MatchesStandaloneRmsProfiler) {
  TraceBuilder Trace;
  Trace.start(1).start(2).call(1, F).read(1, X).write(2, X);
  Trace.call(1, G).read(1, X).read(1, 800).ret(1, G);
  Trace.read(1, 800).ret(1, F).end(1).end(2);

  ProfileDatabase TrmsDb = runTrms(Trace);
  RmsProfilerOptions RmsOpts;
  ProfileDatabase RmsDb = profileTrace<RmsProfiler>(Trace.events(), RmsOpts);
  ASSERT_EQ(TrmsDb.log().size(), RmsDb.log().size());
  for (size_t I = 0; I != TrmsDb.log().size(); ++I) {
    EXPECT_EQ(TrmsDb.log()[I].Rms, RmsDb.log()[I].Rms) << "activation " << I;
    EXPECT_EQ(TrmsDb.log()[I].Rtn, RmsDb.log()[I].Rtn);
  }
}

//===----------------------------------------------------------------------===//
// Renumbering (Figure 13)
//===----------------------------------------------------------------------===//

// A trace long enough to force many renumberings at a tiny counter
// limit must produce byte-identical activation records.
TEST(TrmsRenumbering, PreservesResultsUnderTinyCounter) {
  TraceBuilder Trace;
  Trace.start(1).start(2).start(3);
  Trace.call(1, F).call(2, G).call(3, H);
  for (unsigned Round = 0; Round != 120; ++Round) {
    ThreadId Writer = 1 + Round % 3;
    ThreadId Reader = 1 + (Round + 1) % 3;
    Addr A = 900 + Round % 7;
    Trace.write(Writer, A);
    Trace.read(Reader, A);
    if (Round % 11 == 3)
      Trace.kernelWrite(Reader, A);
    if (Round % 5 == 0) {
      Trace.call(Reader, Consumer).read(Reader, A).ret(Reader, Consumer);
    }
  }
  Trace.ret(1, F).ret(2, G).ret(3, H).end(1).end(2).end(3);

  TrmsProfilerOptions Big;
  Big.KeepActivationLog = true;
  TrmsProfilerOptions Tiny = Big;
  Tiny.CounterLimit = 64;

  TrmsProfiler BigProf(Big), TinyProf(Tiny);
  replayTrace(Trace.events(), BigProf);
  replayTrace(Trace.events(), TinyProf);

  EXPECT_EQ(BigProf.renumberings(), 0u);
  EXPECT_GE(TinyProf.renumberings(), 2u);
  ASSERT_EQ(BigProf.database().log().size(),
            TinyProf.database().log().size());
  for (size_t I = 0; I != BigProf.database().log().size(); ++I)
    EXPECT_EQ(BigProf.database().log()[I], TinyProf.database().log()[I])
        << "activation " << I;
}

// Batched delivery (the live VM's path: pending buffer, adjacent-access
// merging, basic-block folding) must produce a ProfileDatabase
// bit-identical to per-event delivery — including when a tiny counter
// limit forces renumberings mid-batch. The trace interleaves three
// threads with runs of adjacent single-cell accesses (so compaction
// actually merges), basic-block costs, kernel writes, and nested calls.
TEST(TrmsBatching, BatchedDeliveryMatchesPerEvent) {
  TraceBuilder Trace;
  Trace.start(1).start(2).start(3);
  Trace.call(1, F).call(2, G).call(3, H);
  for (unsigned Round = 0; Round != 200; ++Round) {
    ThreadId Writer = 1 + Round % 3;
    ThreadId Reader = 1 + (Round + 1) % 3;
    Addr Base = 1000 + (Round % 5) * 64;
    for (Addr A = Base; A != Base + 8; ++A)
      Trace.write(Writer, A);
    Trace.bb(Writer).bb(Writer);
    for (Addr A = Base; A != Base + 8; ++A)
      Trace.read(Reader, A);
    Trace.bb(Reader);
    if (Round % 7 == 2)
      Trace.kernelWrite(Reader, Base, 4);
    if (Round % 2 == 1)
      Trace.call(Reader, Consumer)
          .read(Reader, Base)
          .bb(Reader)
          .ret(Reader, Consumer);
  }
  Trace.ret(1, F).ret(2, G).ret(3, H).end(1).end(2).end(3);

  TrmsProfilerOptions Opts;
  Opts.KeepActivationLog = true;
  Opts.CounterLimit = 48;

  TrmsProfiler PerEvent(Opts), Batched(Opts);
  replayTrace(Trace.events(), PerEvent);
  replayTraceBatched(Trace.events(), Batched);
  EXPECT_GE(Batched.renumberings(), 2u);

  ASSERT_EQ(PerEvent.database().log().size(),
            Batched.database().log().size());
  for (size_t I = 0; I != PerEvent.database().log().size(); ++I)
    EXPECT_EQ(PerEvent.database().log()[I], Batched.database().log()[I])
        << "activation " << I;
  EXPECT_EQ(PerEvent.database().totalActivations(),
            Batched.database().totalActivations());
}

// After a renumbering, the counter restarts just above the pending
// activations' renumbered stamps.
TEST(TrmsRenumbering, CounterRestartsLow) {
  TraceBuilder Trace;
  Trace.start(1).call(1, F);
  for (unsigned I = 0; I != 300; ++I)
    Trace.call(1, G).ret(1, G);
  TrmsProfilerOptions Opts;
  Opts.CounterLimit = 128;
  TrmsProfiler Prof(Opts);
  replayTrace(Trace.events(), Prof);
  EXPECT_GT(Prof.renumberings(), 0u);
  EXPECT_LT(Prof.counterValue(), 128u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Resource management
//===----------------------------------------------------------------------===//

namespace {

// A dead thread's shadow is released; the footprint reported afterwards
// is the high-water mark, not the residual state.
TEST(TrmsResources, ThreadShadowsReleasedAtThreadEnd) {
  TrmsProfiler Prof;
  TraceBuilder Warmup;
  Warmup.start(1).call(1, F);
  for (Addr A = 0; A != 2000; ++A)
    Warmup.read(1, 5000 + A);
  Warmup.ret(1, F).end(1);
  replayTrace(Warmup.events(), Prof);
  uint64_t Peak = Prof.memoryFootprintBytes();
  EXPECT_GT(Peak, 2000u);

  // Replay many more short-lived threads touching the same range into
  // the same profiler: with per-thread shadows released at thread end,
  // the peak should stay roughly flat rather than scale with the total
  // number of threads ever created.
  TrmsProfiler Many;
  TraceBuilder Trace;
  for (ThreadId Tid = 1; Tid <= 64; ++Tid) {
    Trace.start(Tid).call(Tid, F);
    for (Addr A = 0; A != 2000; ++A)
      Trace.read(Tid, 5000 + A);
    Trace.ret(Tid, F).end(Tid);
  }
  replayTrace(Trace.events(), Many);
  EXPECT_LT(Many.memoryFootprintBytes(), 8 * Peak)
      << "footprint scales with dead threads: shadows not released";
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 13's three renumbering cases, pinned explicitly
//===----------------------------------------------------------------------===//

namespace {

// Build a state where, at renumbering time, location X sits in each of
// the three order relations w.r.t. its last write, then check the
// post-renumbering reads classify exactly as before. The counter limit
// is placed so the renumbering fires between the setup and the probes.
TEST(TrmsRenumbering, ThreeWayCaseClassification) {
  constexpr Addr OwnWritten = 700;   // case 1: ts == wts (own write)
  constexpr Addr ForeignNew = 701;   // case 2: ts < wts (foreign write after)
  constexpr Addr Consumed = 702;     // case 3: ts > wts (read after write)

  TraceBuilder Trace;
  Trace.start(1).start(2).call(1, F).call(2, G);
  // Case 1 setup: thread 1 writes OwnWritten (its ts == wts).
  Trace.write(1, OwnWritten);
  // Case 3 setup: thread 2 writes Consumed, thread 1 reads it (consumed).
  Trace.write(2, Consumed);
  Trace.read(1, Consumed);
  // Case 2 setup: thread 1 reads ForeignNew, then thread 2 writes it.
  Trace.read(1, ForeignNew);
  Trace.write(2, ForeignNew);

  // Pad with calls until the counter limit forces a renumbering.
  for (int I = 0; I != 40; ++I)
    Trace.call(1, H).ret(1, H);

  // Probes: enter a fresh activation and re-read all three locations.
  Trace.call(1, Consumer);
  Trace.read(1, OwnWritten);  // own value: first access for Consumer,
                              // NOT induced
  Trace.read(1, ForeignNew);  // foreign value arrived: induced
  Trace.read(1, Consumed);    // already consumed: first access only
  Trace.ret(1, Consumer);
  Trace.ret(1, F).end(1).ret(2, G).end(2);

  TrmsProfilerOptions Tiny;
  Tiny.KeepActivationLog = true;
  Tiny.CounterLimit = 48; // fires inside the padding loop
  TrmsProfiler Prof(Tiny);
  replayTrace(Trace.events(), Prof);
  ASSERT_GT(Prof.renumberings(), 0u);

  TrmsProfilerOptions Big;
  Big.KeepActivationLog = true;
  TrmsProfiler Reference(Big);
  replayTrace(Trace.events(), Reference);
  ASSERT_EQ(Reference.renumberings(), 0u);

  // Identical classification with and without the renumbering.
  ASSERT_EQ(Prof.database().log().size(),
            Reference.database().log().size());
  for (size_t I = 0; I != Prof.database().log().size(); ++I)
    EXPECT_EQ(Prof.database().log()[I], Reference.database().log()[I]);

  // And the expected absolute values: Consumer read 3 fresh cells, one
  // of them induced by the other thread.
  const ActivationRecord *Probe =
      findActivation(Prof.database(), Consumer);
  ASSERT_NE(Probe, nullptr);
  EXPECT_EQ(Probe->Trms, 3u);
  EXPECT_EQ(Probe->InducedThread, 1u);
}

} // namespace
