//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the test suites: a fluent trace builder for
/// hand-constructed executions (the paper's figures), and shorthands for
/// running profilers over traces and fetching per-routine results.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TESTS_TESTUTIL_H
#define ISPROF_TESTS_TESTUTIL_H

#include "core/ProfileData.h"
#include "instr/Dispatcher.h"
#include "trace/Event.h"

#include <vector>

namespace isp {

/// Builds totally ordered traces with automatic timestamps.
class TraceBuilder {
public:
  TraceBuilder &start(ThreadId Tid, ThreadId Parent = 0) {
    Events.push_back(EventRecord::threadStart(Tid, next(), Parent));
    return *this;
  }
  TraceBuilder &end(ThreadId Tid) {
    Events.push_back(EventRecord::threadEnd(Tid, next()));
    return *this;
  }
  TraceBuilder &call(ThreadId Tid, RoutineId Rtn) {
    Events.push_back(EventRecord::call(Tid, next(), Rtn));
    return *this;
  }
  TraceBuilder &ret(ThreadId Tid, RoutineId Rtn) {
    Events.push_back(EventRecord::ret(Tid, next(), Rtn, 0));
    return *this;
  }
  TraceBuilder &read(ThreadId Tid, Addr A, uint64_t Cells = 1) {
    Events.push_back(EventRecord::read(Tid, next(), A, Cells));
    return *this;
  }
  TraceBuilder &write(ThreadId Tid, Addr A, uint64_t Cells = 1) {
    Events.push_back(EventRecord::write(Tid, next(), A, Cells));
    return *this;
  }
  TraceBuilder &kernelRead(ThreadId Tid, Addr A, uint64_t Cells = 1) {
    Events.push_back(EventRecord::kernelRead(Tid, next(), A, Cells));
    return *this;
  }
  TraceBuilder &kernelWrite(ThreadId Tid, Addr A, uint64_t Cells = 1) {
    Events.push_back(EventRecord::kernelWrite(Tid, next(), A, Cells));
    return *this;
  }
  TraceBuilder &bb(ThreadId Tid, uint64_t Count = 1) {
    Events.push_back(EventRecord::basicBlock(Tid, next(), Count));
    return *this;
  }

  const std::vector<EventRecord> &events() const { return Events; }

private:
  uint64_t next() { return ++Clock; }
  std::vector<EventRecord> Events;
  uint64_t Clock = 0;
};

/// Runs \p ProfilerT over \p Events with activation logging and returns
/// the database.
template <typename ProfilerT, typename OptionsT>
ProfileDatabase profileTrace(const std::vector<EventRecord> &Events,
                             OptionsT Options) {
  Options.KeepActivationLog = true;
  ProfilerT Profiler(Options);
  replayTrace(Events, Profiler);
  return Profiler.takeDatabase();
}

/// First activation record of routine \p Rtn in \p Database's log.
inline const ActivationRecord *findActivation(const ProfileDatabase &Database,
                                              RoutineId Rtn) {
  for (const ActivationRecord &R : Database.log())
    if (R.Rtn == Rtn)
      return &R;
  return nullptr;
}

} // namespace isp

#endif // ISPROF_TESTS_TESTUTIL_H
