//===- examples/quickstart.cpp - First steps with isprof ------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: compile a small concurrent guest program, run it under the
// multithreaded input-sensitive profiler, and print (a) the run summary,
// (b) per-routine reports with fitted cost curves, and (c) the raw
// worst-case cost plot of one routine keyed by rms vs trms, showing why
// the threaded metric matters.
//
// Build & run:   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "vm/Compiler.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace isp;

// A worker pool summing slices of a shared table that a refresher thread
// keeps rewriting: sumSlice's real input grows with every refresh even
// though it rereads the same addresses.
static const char *GuestSource = R"(
var table[256];
var rounds;

fn sumSlice(lo, hi) {
  var acc = 0;
  var i = lo;
  while (i < hi) {
    acc = acc + table[i];
    i = i + 1;
  }
  return acc;
}

fn worker(id, per) {
  var r = 0;
  var acc = 0;
  while (r < rounds) {
    acc = acc + sumSlice(id * per, id * per + per);
    yield();
    r = r + 1;
  }
  return acc;
}

fn refresher() {
  var r = 0;
  while (r < rounds) {
    sysread(1, table, 256);
    yield();
    r = r + 1;
  }
  return 0;
}

fn main() {
  rounds = 12;
  var fresh = spawn refresher();
  var w0 = spawn worker(0, 64);
  var w1 = spawn worker(1, 64);
  var w2 = spawn worker(2, 64);
  var w3 = spawn worker(3, 64);
  join(fresh);
  var total = join(w0) + join(w1) + join(w2) + join(w3);
  print(total % 1000003);
  return 0;
}
)";

int main() {
  // 1. Compile the guest program.
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(GuestSource, Diags);
  if (!Prog) {
    std::fprintf(stderr, "compile failed:\n%s", Diags.render().c_str());
    return 1;
  }

  // 2. Attach the profiler and run.
  TrmsProfiler Profiler;
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Profiler);
  Machine M(*Prog, &Dispatcher);
  RunResult Result = M.run();
  if (!Result.Ok) {
    std::fprintf(stderr, "guest run failed: %s\n", Result.Error.c_str());
    return 1;
  }
  std::printf("guest output: %s", Result.Output.c_str());
  std::printf("executed %llu instructions, %llu basic blocks, "
              "%llu thread switches\n\n",
              static_cast<unsigned long long>(Result.Stats.Instructions),
              static_cast<unsigned long long>(Result.Stats.BasicBlocks),
              static_cast<unsigned long long>(Result.Stats.ThreadSwitches));

  // 3. Inspect the profile.
  const ProfileDatabase &Db = Profiler.database();
  std::printf("%s\n", renderRunSummary(Db, &Prog->Symbols).c_str());

  auto Merged = Db.mergedByRoutine();
  for (const auto &[Rtn, Profile] : Merged)
    std::printf("%s\n",
                renderRoutineReport(Rtn, Profile, &Prog->Symbols).c_str());

  // 4. Show the headline effect: sumSlice keyed by rms collapses onto a
  // couple of points; keyed by trms the refreshed input is visible.
  RoutineId Slice = Prog->Symbols.lookup("sumSlice");
  const RoutineProfile &SliceProfile = Merged.at(Slice);
  std::printf("sumSlice worst-case plot by rms:\n%s\n",
              renderSeries(worstCasePlot(SliceProfile, InputMetric::Rms),
                           "rms", "maxCost")
                  .c_str());
  std::printf("sumSlice worst-case plot by trms:\n%s",
              renderSeries(worstCasePlot(SliceProfile, InputMetric::Trms),
                           "trms", "maxCost")
                  .c_str());
  return 0;
}
