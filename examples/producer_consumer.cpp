//===- examples/producer_consumer.cpp - The paper's Section 2 examples ----------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's two didactic cases live:
//   Figure 2: producer-consumer over one shared cell — the consumer's
//     rms stays O(1) while its trms counts every value produced.
//   Figure 3: buffered kernel reads where only half the delivered data
//     is consumed — trms counts exactly the consumed half, all external.
//
// Usage: ./build/examples/producer_consumer [--items=N]
//
//===----------------------------------------------------------------------===//

#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "support/CommandLine.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace isp;

static void report(const char *Title, const ProfiledRun &Run,
                   const char *RoutineName) {
  auto Merged = Run.Profile.mergedByRoutine();
  RoutineId Id = Run.Symbols.lookup(RoutineName);
  if (Id == ~0u || !Merged.count(Id)) {
    std::fprintf(stderr, "routine %s not found\n", RoutineName);
    return;
  }
  const RoutineProfile &Profile = Merged.at(Id);
  std::printf("%s\n  routine %-14s rms(sum)=%-6llu trms(sum)=%-6llu "
              "thread-induced=%-6llu external=%llu\n",
              Title, RoutineName,
              static_cast<unsigned long long>(Profile.sumRms()),
              static_cast<unsigned long long>(Profile.sumTrms()),
              static_cast<unsigned long long>(Profile.inducedThread()),
              static_cast<unsigned long long>(Profile.inducedExternal()));
}

int main(int Argc, char **Argv) {
  OptionParser Options("Reproduces the paper's Figure 2 (producer-"
                       "consumer) and Figure 3 (buffered read) examples");
  Options.addOption("items", "64", "values produced / iterations");
  if (!Options.parse(Argc, Argv))
    return 1;
  WorkloadParams Params;
  Params.Size = static_cast<uint64_t>(Options.getInt("items"));

  const WorkloadInfo *Fig2 = findWorkload("producer_consumer");
  const WorkloadInfo *Fig3 = findWorkload("buffered_read");
  if (!Fig2 || !Fig3) {
    std::fprintf(stderr, "workloads missing from registry\n");
    return 1;
  }

  ProfiledRun Run2 = profileWorkload(*Fig2, Params);
  if (!Run2.Run.Ok) {
    std::fprintf(stderr, "%s\n", Run2.Run.Error.c_str());
    return 1;
  }
  report("Figure 2 - producer/consumer over one cell:", Run2, "consumer");
  std::printf("  -> rms misses the stream entirely; trms grows with the "
              "%lld items.\n\n",
              static_cast<long long>(Params.Size));

  ProfiledRun Run3 = profileWorkload(*Fig3, Params);
  if (!Run3.Run.Ok) {
    std::fprintf(stderr, "%s\n", Run3.Run.Error.c_str());
    return 1;
  }
  report("Figure 3 - buffered reads, half the data consumed:", Run3,
         "externalRead");
  std::printf("  -> the kernel delivered %lld values but only the ~%lld "
              "actually read count as input, all external.\n",
              static_cast<long long>(2 * Params.Size),
              static_cast<long long>(Params.Size));
  return 0;
}
