//===- examples/dbserver.cpp - The MySQL case study -----------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's MySQL case study (Section 3) on the dbserver workload:
// profiles a table server under concurrent clients and prints, for the
// case-study routines,
//   - mysql_select:             worst-case plots by rms vs trms (Fig. 4),
//   - buf_flush_buffered_writes: fitted growth by rms vs trms (Fig. 6),
//   - protocol_send_eof:        workload plots (Fig. 8),
// plus the per-routine external/thread-induced split (Fig. 9a).
//
// Usage: ./build/examples/dbserver [--clients=N] [--size=N]
//
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "core/Report.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace isp;

static const RoutineProfile *
lookupProfile(const std::map<RoutineId, RoutineProfile> &Merged,
              const SymbolTable &Symbols, const char *Name) {
  RoutineId Id = Symbols.lookup(Name);
  auto It = Merged.find(Id);
  return It == Merged.end() ? nullptr : &It->second;
}

int main(int Argc, char **Argv) {
  OptionParser Options("MySQL-like case study: input-sensitive profiles "
                       "of a table server under concurrent clients");
  Options.addOption("clients", "4", "concurrent client threads");
  Options.addOption("size", "96", "workload scale (table sizes, queries)");
  if (!Options.parse(Argc, Argv))
    return 1;

  const WorkloadInfo *Server = findWorkload("dbserver");
  WorkloadParams Params;
  Params.Threads = static_cast<unsigned>(Options.getInt("clients"));
  Params.Size = static_cast<uint64_t>(Options.getInt("size"));

  std::printf("profiling dbserver with %u clients, scale %llu...\n\n",
              Params.Threads,
              static_cast<unsigned long long>(Params.Size));
  ProfiledRun Run = profileWorkload(*Server, Params);
  if (!Run.Run.Ok) {
    std::fprintf(stderr, "%s\n", Run.Run.Error.c_str());
    return 1;
  }

  auto Merged = Run.Profile.mergedByRoutine();

  // Figure 4: the select scan, by rms and by trms.
  if (const RoutineProfile *Select =
          lookupProfile(Merged, Run.Symbols, "mysql_select")) {
    std::printf("== mysql_select (Figure 4) ==\n");
    FitResult ByRms = fitWorstCase(*Select, InputMetric::Rms);
    FitResult ByTrms = fitWorstCase(*Select, InputMetric::Trms);
    std::printf("  by rms : %zu plot points, fit %s\n",
                Select->distinctRmsValues(),
                formatFit(ByRms.best()).c_str());
    std::printf("  by trms: %zu plot points, fit %s\n",
                Select->distinctTrmsValues(),
                formatFit(ByTrms.best()).c_str());
    std::printf("  (buffer reuse caps the rms at the page-buffer size; "
                "the trms tracks the true table input)\n\n");
  }

  // Figure 6: the flush routine's superlinear ordering pass.
  if (const RoutineProfile *Flush = lookupProfile(
          Merged, Run.Symbols, "buf_flush_buffered_writes")) {
    std::printf("== buf_flush_buffered_writes (Figure 6) ==\n");
    FitResult ByRms = fitWorstCase(*Flush, InputMetric::Rms);
    FitResult ByTrms = fitWorstCase(*Flush, InputMetric::Trms);
    std::printf("  by rms : %s (alpha %.2f)\n",
                growthModelName(ByRms.best().Model), ByRms.PowerLawAlpha);
    std::printf("  by trms: %s (alpha %.2f)\n\n",
                growthModelName(ByTrms.best().Model), ByTrms.PowerLawAlpha);
  }

  // Figure 8: workload characterization of the protocol routine.
  if (const RoutineProfile *Eof =
          lookupProfile(Merged, Run.Symbols, "protocol_send_eof")) {
    std::printf("== protocol_send_eof workload plot (Figure 8) ==\n");
    std::printf("%s\n",
                renderSeries(workloadPlot(*Eof, InputMetric::Trms), "trms",
                             "activations")
                    .c_str());
  }

  // Figure 9a: per-routine external vs thread-induced split.
  std::printf("== external vs thread-induced input per routine "
              "(Figure 9a) ==\n");
  TextTable Table;
  Table.setHeader({"routine", "induced", "external%", "thread%"});
  for (const RoutineMetrics &M : computeRoutineMetrics(Run.Profile)) {
    uint64_t Induced = 0;
    auto It = Merged.find(M.Rtn);
    if (It != Merged.end())
      Induced = It->second.inducedThread() + It->second.inducedExternal();
    if (Induced == 0)
      continue;
    Table.addRow({Run.Symbols.routineName(M.Rtn),
                  formatWithCommas(Induced),
                  formatString("%.1f", M.ExternalPct),
                  formatString("%.1f", M.ThreadInducedPct)});
  }
  std::printf("%s\n", Table.render().c_str());

  std::printf("%s\n", renderRunSummary(Run.Profile, &Run.Symbols).c_str());
  return 0;
}
