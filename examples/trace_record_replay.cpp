//===- examples/trace_record_replay.cpp - Offline profiling ---------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Record once, analyze many times: runs a workload while recording its
// event trace to a binary file, then replays the file offline under
// several independent analyses (aprof-trms, aprof-rms, the race
// detector) and verifies the offline trms profile matches the live one.
// This decoupling is what the trace model of Section 4 buys.
//
// Usage: ./build/examples/trace_record_replay [--workload=dedup]
//                                             [--out=/tmp/isprof.trc]
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "core/RmsProfiler.h"
#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "tools/HelgrindTool.h"
#include "trace/TraceFile.h"
#include "vm/Machine.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace isp;

int main(int Argc, char **Argv) {
  OptionParser Options("Records a workload trace to disk, then profiles "
                       "it offline");
  Options.addOption("workload", "dedup", "workload name (see registry)");
  Options.addOption("threads", "4", "worker threads");
  Options.addOption("size", "48", "workload scale");
  Options.addOption("out", "/tmp/isprof_example.trc", "trace file path");
  if (!Options.parse(Argc, Argv))
    return 1;

  const WorkloadInfo *W = findWorkload(Options.getString("workload"));
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'; known:\n",
                 Options.getString("workload").c_str());
    for (const WorkloadInfo &Info : allWorkloads())
      std::fprintf(stderr, "  %-18s (%s) %s\n", Info.Name.c_str(),
                   Info.Suite.c_str(), Info.Description.c_str());
    return 1;
  }
  WorkloadParams Params;
  Params.Threads = static_cast<unsigned>(Options.getInt("threads"));
  Params.Size = static_cast<uint64_t>(Options.getInt("size"));

  // --- Record (with a live profiler attached for the cross-check). ---
  std::string CompileError;
  std::optional<Program> Prog = compileWorkload(*W, Params, &CompileError);
  if (!Prog) {
    std::fprintf(stderr, "%s\n", CompileError.c_str());
    return 1;
  }
  TrmsProfilerOptions ProfOpts;
  ProfOpts.KeepActivationLog = true;
  TrmsProfiler Live(ProfOpts);
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&Live);
  Dispatcher.enableRecording();
  Machine M(*Prog, &Dispatcher);
  RunResult Run = M.run();
  if (!Run.Ok) {
    std::fprintf(stderr, "guest failed: %s\n", Run.Error.c_str());
    return 1;
  }

  TraceData Data;
  Data.Routines = Prog->Symbols.entries();
  Data.Events = Dispatcher.takeRecordedEvents();
  std::string Path = Options.getString("out");
  if (!writeTraceFile(Path, Data)) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return 1;
  }
  std::printf("recorded %zu events from '%s' to %s (%s)\n\n",
              Data.Events.size(), W->Name.c_str(), Path.c_str(),
              formatBytes(serializeTrace(Data).size()).c_str());

  // --- Replay offline under three analyses. ---
  TraceData Loaded;
  if (!readTraceFile(Path, Loaded)) {
    std::fprintf(stderr, "cannot read back %s\n", Path.c_str());
    return 1;
  }
  SymbolTable Symbols;
  for (const auto &[Id, Name] : Loaded.Routines)
    Symbols.intern(Name);

  TrmsProfiler Offline(ProfOpts);
  replayTrace(Loaded.Events, Offline, &Symbols);
  bool Identical = Offline.database().log() == Live.database().log();
  std::printf("offline trms profile %s the live profile (%llu "
              "activations)\n",
              Identical ? "matches" : "DIFFERS FROM",
              static_cast<unsigned long long>(
                  Offline.database().totalActivations()));

  RmsProfiler Rms;
  replayTrace(Loaded.Events, Rms, &Symbols);
  HelgrindTool Races;
  replayTrace(Loaded.Events, Races, &Symbols);
  std::printf("offline aprof-rms saw %llu activations; helgrind reports "
              "%llu race(s)\n\n",
              static_cast<unsigned long long>(
                  Rms.database().totalActivations()),
              static_cast<unsigned long long>(Races.racesDetected()));

  std::printf("%s", renderRunSummary(Offline.database(), &Symbols).c_str());
  return Identical ? 0 : 1;
}
