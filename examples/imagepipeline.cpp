//===- examples/imagepipeline.cpp - The vips case study --------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's vips case study (Section 3) on the vips_pipeline workload:
// a data-parallel image pipeline whose workers consume strips rewritten
// by a loader thread, with a write-behind output thread. Prints:
//   - im_generate's plots by rms vs trms (Figure 5),
//   - wbuffer_write_thread's profile richness and induced share
//     (Figure 7: two rms points vs many trms points, ~all induced),
//   - the per-routine induced split (Figure 9b).
//
// Usage: ./build/examples/imagepipeline [--workers=N] [--size=N]
//
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "core/Report.h"
#include "support/CommandLine.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace isp;

int main(int Argc, char **Argv) {
  OptionParser Options("vips-like case study: image pipeline with "
                       "write-behind thread");
  Options.addOption("workers", "4", "pipeline worker threads");
  Options.addOption("size", "96", "workload scale (bands, tiles)");
  if (!Options.parse(Argc, Argv))
    return 1;

  const WorkloadInfo *Vips = findWorkload("vips_pipeline");
  WorkloadParams Params;
  Params.Threads = static_cast<unsigned>(Options.getInt("workers"));
  Params.Size = static_cast<uint64_t>(Options.getInt("size"));

  std::printf("profiling vips_pipeline with %u workers, scale %llu...\n\n",
              Params.Threads,
              static_cast<unsigned long long>(Params.Size));
  ProfiledRun Run = profileWorkload(*Vips, Params);
  if (!Run.Run.Ok) {
    std::fprintf(stderr, "%s\n", Run.Run.Error.c_str());
    return 1;
  }
  auto Merged = Run.Profile.mergedByRoutine();

  RoutineId Generate = Run.Symbols.lookup("im_generate");
  if (Merged.count(Generate)) {
    const RoutineProfile &Profile = Merged.at(Generate);
    std::printf("== im_generate (Figure 5) ==\n");
    std::printf("  by rms : %zu points, fit %s\n",
                Profile.distinctRmsValues(),
                formatFit(fitWorstCase(Profile, InputMetric::Rms).best())
                    .c_str());
    std::printf("  by trms: %zu points, fit %s\n",
                Profile.distinctTrmsValues(),
                formatFit(fitWorstCase(Profile, InputMetric::Trms).best())
                    .c_str());
    std::printf("  (the strip it convolves is rewritten by the loader "
                "thread: its real input is thread-induced)\n\n");
  }

  RoutineId Writer = Run.Symbols.lookup("wbuffer_write_thread");
  if (Merged.count(Writer)) {
    const RoutineProfile &Profile = Merged.at(Writer);
    uint64_t Induced = Profile.inducedThread() + Profile.inducedExternal();
    double InducedShare =
        Profile.sumTrms()
            ? 100.0 * static_cast<double>(Induced) /
                  static_cast<double>(Profile.sumTrms())
            : 0.0;
    std::printf("== wbuffer_write_thread (Figure 7) ==\n");
    std::printf("  activations: %llu\n",
                static_cast<unsigned long long>(Profile.activations()));
    std::printf("  distinct rms values : %zu\n",
                Profile.distinctRmsValues());
    std::printf("  distinct trms values: %zu\n",
                Profile.distinctTrmsValues());
    std::printf("  induced share of input: %.1f%% (%llu thread-induced, "
                "%llu external)\n\n",
                InducedShare,
                static_cast<unsigned long long>(Profile.inducedThread()),
                static_cast<unsigned long long>(Profile.inducedExternal()));
  }

  std::printf("== per-routine induced split (Figure 9b) ==\n");
  for (const RoutineMetrics &M : computeRoutineMetrics(Run.Profile)) {
    auto It = Merged.find(M.Rtn);
    if (It == Merged.end() ||
        It->second.inducedThread() + It->second.inducedExternal() == 0)
      continue;
    std::printf("  %-24s thread %.1f%%  external %.1f%%  (%.1f%% of its "
                "input is induced)\n",
                Run.Symbols.routineName(M.Rtn).c_str(), M.ThreadInducedPct,
                M.ExternalPct, M.InducedShareOfInputPct);
  }

  std::printf("\n%s\n", renderRunSummary(Run.Profile, &Run.Symbols).c_str());
  return 0;
}
