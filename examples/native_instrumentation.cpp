//===- examples/native_instrumentation.cpp - Profiling host C++ code -------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The profilers consume an abstract event stream, so they can profile
// *host* C++ code too: this example wraps a real C++ binary-search-tree
// implementation with a tiny manual instrumentation layer (call/return
// plus reads/writes keyed by node identity) and lets aprof-trms infer
// the empirical cost curves — O(log n) per lookup, O(n) per full sweep —
// without the VM in the loop. It is the pattern a Pin/DynamoRIO frontend
// would automate.
//
// Usage: ./build/examples/native_instrumentation [--keys=N]
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "core/TrmsProfiler.h"
#include "instr/SymbolTable.h"
#include "support/CommandLine.h"
#include "support/Random.h"

#include <cstdio>
#include <memory>
#include <unordered_map>

using namespace isp;

namespace {

/// Minimal manual instrumentation layer: scoped routine activations and
/// tagged memory accesses feeding a Tool directly.
class Instrumentation {
public:
  explicit Instrumentation(Tool &T) : T(T) { T.onThreadStart(0, 0); }
  ~Instrumentation() {
    T.onThreadEnd(0);
    T.onFinish();
  }

  RoutineId routine(const std::string &Name) { return Symbols.intern(Name); }
  const SymbolTable &symbols() const { return Symbols; }

  void call(RoutineId Rtn) { T.onCall(0, Rtn); }
  void ret(RoutineId Rtn) {
    T.onBasicBlock(0, 1); // at least one block per activation
    T.onReturn(0, Rtn);
  }
  void read(const void *P) { T.onRead(0, addressOf(P), 1); }
  void write(const void *P) { T.onWrite(0, addressOf(P), 1); }
  void block() { T.onBasicBlock(0, 1); }

private:
  /// Host pointers are interned into a compact cell address space (raw
  /// 64-bit pointers exceed the shadow memories' address range).
  Addr addressOf(const void *P) {
    auto [It, Inserted] = AddressMap.try_emplace(P, NextAddress);
    if (Inserted)
      ++NextAddress;
    return It->second;
  }

  Tool &T;
  SymbolTable Symbols;
  std::unordered_map<const void *, Addr> AddressMap;
  Addr NextAddress = 1;
};

/// A plain C++ BST, instrumented by hand at its memory touchpoints.
struct TreeNode {
  int64_t Key;
  std::unique_ptr<TreeNode> Left;
  std::unique_ptr<TreeNode> Right;
};

class InstrumentedTree {
public:
  explicit InstrumentedTree(Instrumentation &Instr)
      : Instr(Instr), InsertId(Instr.routine("bst_insert")),
        LookupId(Instr.routine("bst_lookup")),
        SumId(Instr.routine("bst_sum")) {}

  void insert(int64_t Key) {
    Instr.call(InsertId);
    std::unique_ptr<TreeNode> *Slot = &Root;
    while (*Slot) {
      Instr.read(&(*Slot)->Key);
      Instr.block();
      Slot = Key < (*Slot)->Key ? &(*Slot)->Left : &(*Slot)->Right;
    }
    *Slot = std::make_unique<TreeNode>();
    (*Slot)->Key = Key;
    Instr.write(&(*Slot)->Key);
    Instr.ret(InsertId);
  }

  bool lookup(int64_t Key) {
    Instr.call(LookupId);
    const TreeNode *Node = Root.get();
    bool Found = false;
    while (Node) {
      Instr.read(&Node->Key);
      Instr.block();
      if (Node->Key == Key) {
        Found = true;
        break;
      }
      Node = Key < Node->Key ? Node->Left.get() : Node->Right.get();
    }
    Instr.ret(LookupId);
    return Found;
  }

  int64_t sum() {
    Instr.call(SumId);
    int64_t Total = sumFrom(Root.get());
    Instr.ret(SumId);
    return Total;
  }

private:
  int64_t sumFrom(const TreeNode *Node) {
    if (!Node)
      return 0;
    Instr.read(&Node->Key);
    Instr.block();
    return Node->Key + sumFrom(Node->Left.get()) +
           sumFrom(Node->Right.get());
  }

  Instrumentation &Instr;
  RoutineId InsertId, LookupId, SumId;
  std::unique_ptr<TreeNode> Root;
};

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options("Profiles a host C++ binary search tree through "
                       "manual instrumentation");
  Options.addOption("keys", "4000", "keys to insert");
  if (!Options.parse(Argc, Argv))
    return 1;
  int64_t Keys = Options.getInt("keys");

  TrmsProfiler Profiler;
  SymbolTable Symbols;
  int64_t Checksum = 0;
  {
    Instrumentation Instr(Profiler);
    InstrumentedTree Tree(Instr);
    Rng R(2024);
    for (int64_t I = 0; I != Keys; ++I) {
      Tree.insert(static_cast<int64_t>(R.nextBelow(1000000)));
      if (I % 64 == 0)
        Tree.lookup(static_cast<int64_t>(R.nextBelow(1000000)));
      if ((I & (I + 1)) == 0) // at sizes 2^k - 1: full sweeps
        Checksum ^= Tree.sum();
    }
    Symbols = Instr.symbols();
  }
  std::printf("checksum %lld over %lld keys\n\n",
              static_cast<long long>(Checksum),
              static_cast<long long>(Keys));

  auto Merged = Profiler.database().mergedByRoutine();
  for (const auto &[Rtn, Profile] : Merged) {
    FitResult Fit = fitWorstCase(Profile, InputMetric::Trms);
    uint64_t MaxInput = Profile.costByTrms().empty()
                            ? 0
                            : Profile.costByTrms().rbegin()->first;
    std::printf("%-12s %6llu calls, %3zu distinct input sizes (max %llu), "
                "cost vs input: %s (alpha %.2f)\n",
                Symbols.routineName(Rtn).c_str(),
                static_cast<unsigned long long>(Profile.activations()),
                Profile.distinctTrmsValues(),
                static_cast<unsigned long long>(MaxInput),
                growthModelName(Fit.best().Model), Fit.PowerLawAlpha);
  }
  std::printf(
      "\nReading the shapes: each routine's cost is linear in the nodes it\n"
      "touches (its own input), but the *input sizes* differ sharply —\n"
      "bst_lookup/bst_insert touch only root-to-leaf paths (max input ~log\n"
      "of the tree), while bst_sum's input reaches the full tree size.\n");
  return 0;
}
